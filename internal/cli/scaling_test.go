package cli

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func scalingEntry(shards int, eff float64, work map[string]int64) ScalingEntry {
	return ScalingEntry{Shards: shards, NS: 1000, Speedup: eff, Efficiency: eff, Work: work}
}

func scalingFixture(procs int) *ScalingResult {
	return &ScalingResult{
		Zebras: 24, AvgLen: 24, GridN: 12, K: 10, Seed: 1, GoMaxProcs: procs,
		Floor: 0.5,
		Entries: []ScalingEntry{
			scalingEntry(1, 1.0, map[string]int64{"miner.candidates": 100}),
			scalingEntry(4, 0.8, map[string]int64{"shard.00.miner.candidates": 25}),
		},
	}
}

func TestCheckScalingNilBaseline(t *testing.T) {
	if v := CheckScaling(nil, scalingFixture(4), 10); v != nil {
		t.Errorf("nil baseline produced violations: %v", v)
	}
}

func TestCheckScalingMissingCurrent(t *testing.T) {
	v := CheckScaling(scalingFixture(4), nil, 10)
	if len(v) != 1 || !strings.Contains(v[0], "-scaling") {
		t.Errorf("missing current block not flagged: %v", v)
	}
}

func TestCheckScalingWorkloadMismatch(t *testing.T) {
	cur := scalingFixture(4)
	cur.Zebras = 48
	v := CheckScaling(scalingFixture(4), cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "incomparable") {
		t.Errorf("workload mismatch not flagged: %v", v)
	}
}

func TestCheckScalingEfficiencyFloor(t *testing.T) {
	cur := scalingFixture(4)
	cur.Entries[1].Efficiency = 0.2
	v := CheckScaling(scalingFixture(4), cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "below the floor") {
		t.Errorf("efficiency below floor not flagged: %v", v)
	}
	// Same numbers on a single-CPU machine measure overhead, not scaling:
	// the floor stands down.
	cur.GoMaxProcs = 1
	if v := CheckScaling(scalingFixture(4), cur, 10); len(v) != 0 {
		t.Errorf("floor applied on a 1-CPU run: %v", v)
	}
}

func TestCheckScalingWorkDrift(t *testing.T) {
	cur := scalingFixture(4)
	cur.Entries[1].Work = map[string]int64{"shard.00.miner.candidates": 50}
	v := CheckScaling(scalingFixture(4), cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "shard.00.miner.candidates") {
		t.Errorf("work drift not flagged: %v", v)
	}
	// Two-sided: shrinking work is flagged too.
	cur.Entries[1].Work = map[string]int64{"shard.00.miner.candidates": 1}
	if v := CheckScaling(scalingFixture(4), cur, 10); len(v) != 1 {
		t.Errorf("shrunken work not flagged: %v", v)
	}
}

func TestCheckScalingMissingShardCount(t *testing.T) {
	cur := scalingFixture(4)
	cur.Entries = cur.Entries[:1]
	v := CheckScaling(scalingFixture(4), cur, 10)
	if len(v) != 1 || !strings.Contains(v[0], "shard count 4 missing") {
		t.Errorf("missing shard count not flagged: %v", v)
	}
}

func TestRunScalingSmall(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScaling(context.Background(), &buf, ScalingOptions{
		Counts: []int{1, 2}, Scale: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if res.Entries[0].Shards != 1 || res.Entries[0].Speedup != 1 {
		t.Errorf("reference entry = %+v", res.Entries[0])
	}
	if res.Entries[1].Shards != 2 {
		t.Errorf("second entry shards = %d", res.Entries[1].Shards)
	}
	if len(res.Entries[1].Work) == 0 {
		t.Error("no work counters recorded")
	}
	if !strings.Contains(buf.String(), "scaling:") {
		t.Errorf("missing table header:\n%s", buf.String())
	}
}

func TestRunScalingRejectsBadCounts(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunScaling(context.Background(), &buf, ScalingOptions{Counts: []int{2, 4}}); err == nil {
		t.Error("counts not starting at 1 accepted")
	}
}

func TestMineShardedMatchesSingle(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 12, Len: 25, U: 0.02, C: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opts := MineOptions{K: 5, GridN: 8, MinLen: 1, MaxLen: 4, DeltaMul: 1, Measure: "nm"}
	var single bytes.Buffer
	ref, err := Mine(context.Background(), &single, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = 3
	var buf bytes.Buffer
	got, err := Mine(context.Background(), &buf, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("sharded returned %d patterns, single %d", len(got), len(ref))
	}
	for i := range got {
		if got[i].Key() != ref[i].Key() {
			t.Errorf("rank %d: sharded %s vs single %s", i, got[i].Key(), ref[i].Key())
		}
	}
	out := buf.String()
	if !strings.Contains(out, "×3 shards") {
		t.Errorf("missing shard header:\n%s", out)
	}
	if !strings.Contains(out, "merge:") {
		t.Errorf("missing merge summary:\n%s", out)
	}
}

func TestMineShardedRejectsOtherMeasures(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 6, Len: 15, U: 0.02, C: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Mine(context.Background(), &buf, ds, MineOptions{
		K: 3, GridN: 8, MaxLen: 3, DeltaMul: 1, Measure: "match", Shards: 2,
	}); err == nil {
		t.Error("sharded non-nm measure accepted")
	}
}
