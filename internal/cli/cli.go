// Package cli implements the logic behind the trajgen and trajmine
// command-line tools, factored out of the main packages so it can be
// tested directly: dataset generation dispatch, grid fitting, mining
// dispatch across the three measures, and report formatting.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"trajpattern/internal/baseline"
	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/core/shard/supervisor"
	"trajpattern/internal/datagen"
	"trajpattern/internal/exp"
	"trajpattern/internal/faultio"
	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
	"trajpattern/internal/viz"
)

// GenOptions parameterizes dataset generation (the trajgen tool).
type GenOptions struct {
	Kind  string  // "zebra", "tpr", "posture" or "bus"
	N     int     // trajectories (zebra/tpr/posture)
	Len   int     // average trajectory length
	U     float64 // tolerable uncertainty distance
	C     float64 // confidence constant
	Scale float64 // bus pipeline scale
	Seed  uint64
}

// Generate builds the requested dataset.
func Generate(o GenOptions) (traj.Dataset, error) {
	switch o.Kind {
	case "zebra":
		return datagen.ZebraDataset(datagen.ZebraConfig{
			NumZebras: o.N, AvgLen: o.Len, Seed: o.Seed,
		}, o.U, o.C)
	case "tpr":
		return datagen.TPRDataset(datagen.TPRConfig{
			NumObjects: o.N, Length: o.Len, Seed: o.Seed,
		}, o.U, o.C)
	case "posture":
		return datagen.PostureDataset(datagen.PostureConfig{
			NumSubjects: o.N, Length: o.Len, Seed: o.Seed,
		}, o.U, o.C)
	case "bus":
		data, err := exp.MakeBusData(exp.BusOptions{Scale: o.Scale, U: o.U, C: o.C, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		return data.Velocities, nil
	default:
		return nil, fmt.Errorf("cli: unknown kind %q (want zebra, tpr, posture or bus)", o.Kind)
	}
}

// MineOptions parameterizes a mining run (the trajmine tool).
type MineOptions struct {
	K        int
	GridN    int
	MinLen   int
	MaxLen   int
	DeltaMul float64 // δ as a multiple of the grid cell size
	Measure  string  // "nm", "pb" or "match"
	Shards   int     // >1 partitions the dataset and mines through the sharded engine; <=1 keeps the single-partition miner (nm only)
	Groups   bool    // cluster the result into pattern groups
	Viz      bool    // render ASCII maps
	SavePath string  // when set, persist the scored patterns as JSON
	Metrics  bool    // collect and print an obs metrics snapshot

	// Registry, when non-nil, collects metrics into the caller's registry
	// (so a debug server can watch the run live); otherwise Mine creates
	// one per run when Metrics is set.
	Registry *obs.Registry
	// MetricsOut, when non-empty, writes the provenance-stamped metrics
	// report (obs.Report JSON) to this path.
	MetricsOut string
	// Tracer, when non-nil, records structured spans and events of the run
	// (the caller writes the journal; see SaveTrace).
	Tracer *trace.Tracer
	// OnProgress, when non-nil, receives the miner's per-iteration state
	// (install a ProgressPrinter's Update for -progress). NM measure only.
	OnProgress func(core.Progress)

	// MaxIters bounds the miner's grow iterations (0 = miner default).
	// NM measure only.
	MaxIters int
	// MaxWallTime bounds the run's wall-clock duration; the miner then
	// reports its best-so-far top-k as an interrupted result. NM only.
	MaxWallTime time.Duration
	// CheckpointPath, when non-empty, makes the miner write crash-safe
	// checkpoints there (see core.MinerConfig.CheckpointPath). NM only.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in iterations (0 = 1).
	CheckpointEvery int
	// Resume restores miner state from CheckpointPath before mining. A
	// missing checkpoint file starts a fresh run (so a crash-looped
	// service can always pass -resume).
	Resume bool

	// ShardProcs, when > 0, executes the shards as supervised worker
	// processes — at most ShardProcs running concurrently — instead of
	// in-process goroutines: a crashed, stalled, or timed-out worker is
	// relaunched from its shard's last checkpoint. Requires Shards > 1
	// and either DataPath or WorkerCommand. NM measure only.
	ShardProcs int
	// ShardRetries is the per-shard attempt budget under ShardProcs
	// (0 = supervisor default).
	ShardRetries int
	// ShardStall is the per-shard progress deadline under ShardProcs: a
	// worker whose checkpoint file stops advancing for this long is
	// killed and relaunched. 0 disables hang detection.
	ShardStall time.Duration
	// DataPath is the dataset file supervised workers re-read; the
	// trajmine -in value. Ignored unless ShardProcs > 0.
	DataPath string
	// WorkerCommand overrides how a worker process is built (tests);
	// nil re-executes this binary with -shard-worker.
	WorkerCommand func(shardIdx, shards int, ckptPrefix string) *exec.Cmd
	// SupervisorLog receives supervision notes and worker stderr under
	// ShardProcs; nil means os.Stderr.
	SupervisorLog io.Writer
}

// FitGrid builds a square grid covering the dataset bounds with a 3σ̄
// margin, the geometry every tool and experiment shares.
func FitGrid(ds traj.Dataset, n int) *grid.Grid {
	b := ds.Bounds().Expand(3 * ds.MeanSigma())
	side := b.Width()
	if b.Height() > side {
		side = b.Height()
	}
	if side == 0 {
		side = 1
	}
	c := b.Center()
	square := geom.NewRect(
		geom.Pt(c.X-side/2, c.Y-side/2),
		geom.Pt(c.X+side/2, c.Y+side/2),
	)
	return grid.New(square, n, n)
}

// Mine runs the requested miner over the dataset and writes a human
// readable report to w. It returns the mined patterns for further use.
//
// Cancelling ctx interrupts an NM run gracefully: the report is written
// for the best-so-far top-k (flagged as interrupted) and partial results
// are still saved. The pb/match baselines do not support interruption.
func Mine(ctx context.Context, w io.Writer, ds traj.Dataset, o MineOptions) ([]core.Pattern, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("cli: empty dataset")
	}
	g := FitGrid(ds, o.GridN)
	reg := o.Registry // nil unless -metrics: the nil registry is free
	if reg == nil && (o.Metrics || o.MetricsOut != "") {
		reg = obs.New()
	}
	s, err := core.NewScorer(ds, core.Config{
		Grid: g, Delta: o.DeltaMul * g.CellWidth(), Metrics: reg, Tracer: o.Tracer,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "dataset: %d trajectories, avg length %.1f, grid %d×%d over %v\n",
		ds.NumTrajectories(), ds.AvgLength(), g.NX(), g.NY(), g.Bounds())

	if o.Measure != "nm" && (o.CheckpointPath != "" || o.Resume || o.MaxWallTime != 0) {
		return nil, fmt.Errorf("cli: checkpoint/resume/deadline options support the nm measure only, not %q", o.Measure)
	}
	if o.Measure != "nm" && o.Shards > 1 {
		return nil, fmt.Errorf("cli: sharded mining supports the nm measure only, not %q", o.Measure)
	}

	var patterns []core.Pattern
	var scored []core.ScoredPattern
	switch o.Measure {
	case "nm":
		mcfg := core.MinerConfig{
			K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K,
			MaxIters: o.MaxIters, MaxWallTime: o.MaxWallTime,
			CheckpointPath: o.CheckpointPath, CheckpointEvery: o.CheckpointEvery,
			Metrics: reg, Tracer: o.Tracer, OnProgress: o.OnProgress,
		}
		if o.Shards > 1 {
			scored, err = mineSharded(ctx, w, s, o, mcfg)
			if err != nil {
				return nil, err
			}
			for _, sp := range scored {
				patterns = append(patterns, sp.Pattern)
			}
			break
		}
		if o.Resume {
			if o.CheckpointPath == "" {
				return nil, fmt.Errorf("cli: resume requires a checkpoint path")
			}
			ck, err := core.LoadCheckpoint(o.CheckpointPath)
			switch {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(w, "no checkpoint at %s; starting fresh\n", o.CheckpointPath)
			case err != nil:
				return nil, err
			default:
				fmt.Fprintf(w, "resuming from %s (iteration %d, |Q| %d)\n",
					o.CheckpointPath, ck.Iteration, len(ck.Q))
				mcfg.Resume = ck
			}
		}
		res, err := core.Mine(ctx, s, mcfg)
		if err != nil {
			return nil, err
		}
		if res.Interrupted {
			fmt.Fprintf(w, "interrupted (%s): reporting best-so-far results\n", res.InterruptReason)
		}
		fmt.Fprintf(w, "TrajPattern: %d iterations, %d candidates, max |Q| %d, pruned %d\n",
			res.Stats.Iterations, res.Stats.Candidates, res.Stats.MaxQ, res.Stats.Pruned)
		for i, sp := range res.Patterns {
			fmt.Fprintf(w, "%3d. NM=%-10.4f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
			patterns = append(patterns, sp.Pattern)
		}
		scored = res.Patterns
	case "pb":
		res, err := baseline.MinePB(s, baseline.PBConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "PB: %d prefixes expanded, %d pruned\n",
			res.Stats.PrefixesExpanded, res.Stats.PrefixesPruned)
		for i, sp := range res.Patterns {
			fmt.Fprintf(w, "%3d. NM=%-10.4f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
			patterns = append(patterns, sp.Pattern)
		}
		scored = res.Patterns
	case "match":
		res, err := baseline.MineMatch(s, baseline.MatchConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "match miner: %d levels, %d candidates\n", res.Stats.Levels, res.Stats.Candidates)
		for i, sm := range res.Patterns {
			fmt.Fprintf(w, "%3d. match=%-10.4f len=%d  %s\n", i+1, sm.Match, len(sm.Pattern), sm.Pattern.Format(g))
			patterns = append(patterns, sm.Pattern)
			scored = append(scored, core.ScoredPattern{Pattern: sm.Pattern, NM: sm.Match})
		}
	default:
		return nil, fmt.Errorf("cli: unknown measure %q (want nm, pb or match)", o.Measure)
	}

	if o.SavePath != "" {
		if err := core.SavePatterns(o.SavePath, scored); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "saved %d patterns to %s\n", len(scored), o.SavePath)
	}

	if reg != nil {
		snap := reg.Snapshot()
		if o.Metrics {
			fmt.Fprintf(w, "\nmetrics:\n%s", snap)
		}
		if o.MetricsOut != "" {
			if err := WriteMetricsReport(o.MetricsOut, snap); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "wrote metrics report to %s\n", o.MetricsOut)
		}
	}

	if o.Viz && len(patterns) > 0 {
		fmt.Fprintln(w)
		fmt.Fprint(w, viz.Density(ds, g, "data density (mean locations):"))
		fmt.Fprintln(w)
		fmt.Fprint(w, viz.PatternPath(patterns[0], g, "best pattern (a→b→c…):"))
	}

	if o.Groups && len(patterns) > 0 {
		gamma := core.DefaultGamma(ds.MeanSigma())
		gs, err := core.DiscoverGroupsTraced(patterns, g, gamma, o.Tracer)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\npattern groups (γ = 3σ̄ = %.4g): %d groups for %d patterns\n",
			gamma, len(gs), len(patterns))
		for i, grp := range gs {
			fmt.Fprintf(w, "group %d (%d members, length %d):\n", i+1, grp.Len(), grp.PatternLen())
			for _, m := range grp.Members {
				fmt.Fprintf(w, "   %s\n", m.Format(g))
			}
		}
	}
	return patterns, nil
}

// mineSharded runs the NM miner through the sharded engine: the dataset
// is partitioned into o.Shards contiguous slices, mined concurrently, and
// merged into the global top-k under the min-max bound. With -resume the
// per-shard checkpoints under o.CheckpointPath are loaded (missing files
// start those shards fresh); the engine writes per-shard checkpoints
// under the same prefix.
func mineSharded(ctx context.Context, w io.Writer, s *core.Scorer, o MineOptions, mcfg core.MinerConfig) ([]core.ScoredPattern, error) {
	eng, err := shard.NewEngine(s, o.Shards)
	if err != nil {
		return nil, err
	}
	n := eng.Shards()
	if o.ShardProcs > 0 && n > 1 {
		return mineSupervised(ctx, w, s, eng, o, mcfg)
	}
	var resume []*core.Checkpoint
	if o.Resume {
		if o.CheckpointPath == "" {
			return nil, fmt.Errorf("cli: resume requires a checkpoint path")
		}
		cks, found, skipped := shard.LoadCheckpoints(o.CheckpointPath, n)
		for _, sk := range skipped {
			fmt.Fprintf(w, "shard %d checkpoint %s unreadable (%v); restarting that shard fresh\n", sk.Shard, sk.Path, sk.Err)
		}
		if found == 0 {
			fmt.Fprintf(w, "no shard checkpoints under %s; starting fresh\n", o.CheckpointPath)
		} else {
			fmt.Fprintf(w, "resuming %d of %d shards from %s\n", found, n, o.CheckpointPath)
			resume = cks
		}
	}
	res, err := eng.Mine(ctx, mcfg, resume)
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		fmt.Fprintf(w, "interrupted (%s): reporting best-so-far results\n", res.InterruptReason)
	}
	fmt.Fprintf(w, "TrajPattern ×%d shards: %d iterations, %d candidates, max |Q| %d, pruned %d\n",
		n, res.Total.Iterations, res.Total.Candidates, res.Total.MaxQ, res.Total.Pruned)
	fmt.Fprintf(w, "merge: %d candidates, %d exact, %d bound-pruned, %d rescored\n",
		res.Merge.Candidates, res.Merge.Exact, res.Merge.BoundPruned, res.Merge.Rescored)
	g := s.Config().Grid
	for i, sp := range res.Patterns {
		fmt.Fprintf(w, "%3d. NM=%-10.4f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
	}
	return res.Patterns, nil
}

// mineSupervised runs the sharded mine with out-of-process workers: the
// supervisor launches one `-shard-worker i/n` child per shard (at most
// o.ShardProcs concurrently), relaunches failures from their shard
// checkpoints, and the merged top-k is assembled from the terminal
// checkpoint files. A shard that exhausts its budget degrades the run
// to an interrupted merged result over the survivors — same semantics
// as an in-process cancellation, with the failure's typed reason in the
// report.
func mineSupervised(ctx context.Context, w io.Writer, s *core.Scorer, eng *shard.Engine, o MineOptions, mcfg core.MinerConfig) ([]core.ScoredPattern, error) {
	n := eng.Shards()
	prefix := o.CheckpointPath
	if prefix == "" {
		dir, err := os.MkdirTemp("", "trajmine-shards-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
		prefix = filepath.Join(dir, "ck")
	}
	mcfg.CheckpointPath = prefix
	if !o.Resume {
		// Workers always relaunch with -resume so a recovered shard
		// continues from its checkpoint; without the user's -resume,
		// stale files from an earlier run must not leak into this one.
		for i := 0; i < n; i++ {
			os.Remove(shard.CheckpointPath(prefix, i, n)) //nolint:errcheck // absent is fine
		}
	}

	cmdFn := o.WorkerCommand
	if cmdFn == nil {
		if o.DataPath == "" {
			return nil, fmt.Errorf("cli: supervised sharding needs the dataset path to hand to workers")
		}
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("cli: locate worker binary: %w", err)
		}
		every := o.CheckpointEvery
		if every <= 0 {
			every = 1
		}
		cmdFn = func(i, n int, prefix string) *exec.Cmd {
			return exec.Command(exe,
				"-shard-worker", fmt.Sprintf("%d/%d", i, n),
				"-in", o.DataPath,
				"-k", strconv.Itoa(o.K),
				"-gridn", strconv.Itoa(o.GridN),
				"-minlen", strconv.Itoa(o.MinLen),
				"-maxlen", strconv.Itoa(o.MaxLen),
				"-maxlowq", strconv.Itoa(mcfg.MaxLowQ),
				"-delta", strconv.FormatFloat(o.DeltaMul, 'g', -1, 64),
				"-maxiters", strconv.Itoa(o.MaxIters),
				"-maxwall", o.MaxWallTime.String(),
				"-checkpoint", prefix,
				"-checkpoint-every", strconv.Itoa(every),
				"-resume",
			)
		}
	}
	logw := o.SupervisorLog
	if logw == nil {
		logw = os.Stderr
	}
	scfg := supervisor.Config{
		CheckpointPrefix: prefix,
		Command:          func(i int) *exec.Cmd { return cmdFn(i, n, prefix) },
		Procs:            o.ShardProcs,
		MaxAttempts:      o.ShardRetries,
		Stall:            o.ShardStall,
		Metrics:          mcfg.Metrics,
		Tracer:           mcfg.Tracer,
		Log:              logw,
	}
	res, run, err := supervisor.Mine(ctx, eng, mcfg, scfg)
	if err != nil {
		return nil, err
	}
	attempts := 0
	for _, oc := range run.Outcomes {
		attempts += oc.Attempts
	}
	fmt.Fprintf(w, "supervised ×%d shards (%d procs): %d worker launches, %d shard failures\n",
		n, o.ShardProcs, attempts, len(run.Failures))
	for _, f := range run.Failures {
		fmt.Fprintf(w, "shard %d gave up (%s, %d attempts): %v\n", f.Shard, f.Kind, f.Attempts, f.Err)
	}
	if res.Interrupted {
		fmt.Fprintf(w, "interrupted (%s): reporting best-so-far results\n", res.InterruptReason)
	}
	fmt.Fprintf(w, "TrajPattern ×%d shards: %d iterations, %d candidates, max |Q| %d, pruned %d\n",
		n, res.Total.Iterations, res.Total.Candidates, res.Total.MaxQ, res.Total.Pruned)
	fmt.Fprintf(w, "merge: %d candidates, %d exact, %d bound-pruned, %d rescored\n",
		res.Merge.Candidates, res.Merge.Exact, res.Merge.BoundPruned, res.Merge.Rescored)
	g := s.Config().Grid
	for i, sp := range res.Patterns {
		fmt.Fprintf(w, "%3d. NM=%-10.4f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
	}
	return res.Patterns, nil
}

// WriteMetricsReport writes a provenance-stamped obs report (commit, Go
// version, host shape, plus the full snapshot) as JSON to path,
// atomically (temp file + fsync + rename).
func WriteMetricsReport(path string, s obs.Snapshot) error {
	data, err := obs.NewReport(s).JSON()
	if err != nil {
		return fmt.Errorf("cli: marshal metrics report: %w", err)
	}
	if err := faultio.WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	}); err != nil {
		return fmt.Errorf("cli: write metrics report: %w", err)
	}
	return nil
}
