package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fakeBench(ns int64, work map[string]int64) *BenchResult {
	return &BenchResult{
		Schema: BenchSchema,
		Scale:  0.3,
		Seed:   1,
		Experiments: map[string]*ExperimentResult{
			"e3": {NS: ns, Work: work},
		},
	}
}

func TestCheckRegressionWithinTolerance(t *testing.T) {
	base := fakeBench(1000, map[string]int64{"scorer.nm.evals": 100, "miner.candidates.fresh": 50})
	cur := fakeBench(5000, map[string]int64{"scorer.nm.evals": 110, "miner.candidates.fresh": 45})
	if got := CheckRegression(base, cur, 15, false); len(got) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", got)
	}
}

func TestCheckRegressionFlagsDrift(t *testing.T) {
	base := fakeBench(1000, map[string]int64{"scorer.nm.evals": 100})
	for _, tc := range []struct {
		name string
		cur  int64
	}{
		{"more work", 120},
		{"less work", 80},
	} {
		cur := fakeBench(1000, map[string]int64{"scorer.nm.evals": tc.cur})
		got := CheckRegression(base, cur, 15, false)
		if len(got) != 1 || !strings.Contains(got[0], "scorer.nm.evals") {
			t.Errorf("%s: got %v, want one scorer.nm.evals violation", tc.name, got)
		}
	}
}

func TestCheckRegressionMissingCounter(t *testing.T) {
	base := fakeBench(1000, map[string]int64{"scorer.nm.evals": 100})
	cur := fakeBench(1000, nil)
	got := CheckRegression(base, cur, 15, false)
	if len(got) != 1 || !strings.Contains(got[0], "missing") {
		t.Errorf("missing counter not flagged: %v", got)
	}
}

func TestCheckRegressionZeroBaseline(t *testing.T) {
	base := fakeBench(1000, map[string]int64{"miner.pruned.lowcap": 0})
	if got := CheckRegression(base, fakeBench(1000, map[string]int64{"miner.pruned.lowcap": 0}), 15, false); len(got) != 0 {
		t.Errorf("0 == 0 flagged: %v", got)
	}
	if got := CheckRegression(base, fakeBench(1000, map[string]int64{"miner.pruned.lowcap": 3}), 15, false); len(got) != 1 {
		t.Errorf("0 -> 3 not flagged: %v", got)
	}
}

func TestCheckRegressionTime(t *testing.T) {
	base := fakeBench(1000, nil)
	slow := fakeBench(1300, nil)
	if got := CheckRegression(base, slow, 15, false); len(got) != 0 {
		t.Errorf("time gated without -checktime: %v", got)
	}
	if got := CheckRegression(base, slow, 15, true); len(got) != 1 {
		t.Errorf("30%% slowdown not flagged with -checktime: %v", got)
	}
	// Faster than baseline never fails.
	if got := CheckRegression(base, fakeBench(100, nil), 15, true); len(got) != 0 {
		t.Errorf("speedup flagged: %v", got)
	}
}

func TestCheckRegressionIncomparableRuns(t *testing.T) {
	base := fakeBench(1000, nil)
	cur := fakeBench(1000, nil)
	cur.Scale = 0.5
	got := CheckRegression(base, cur, 15, false)
	if len(got) != 1 || !strings.Contains(got[0], "incomparable") {
		t.Errorf("scale mismatch not flagged: %v", got)
	}
}

func TestCheckRegressionSkipsUnrunExperiments(t *testing.T) {
	base := fakeBench(1000, map[string]int64{"scorer.nm.evals": 100})
	base.Experiments["e7"] = &ExperimentResult{NS: 1, Work: map[string]int64{"scorer.nm.evals": 100}}
	cur := fakeBench(1000, map[string]int64{"scorer.nm.evals": 100}) // only e3 ran
	if got := CheckRegression(base, cur, 15, false); len(got) != 0 {
		t.Errorf("unrun baseline experiment flagged: %v", got)
	}
}

func TestSelectExperiments(t *testing.T) {
	sel, err := selectExperiments([]string{"e3", " E7 "})
	if err != nil {
		t.Fatal(err)
	}
	if !sel["e3"] || !sel["e7"] || len(sel) != 2 {
		t.Errorf("selection = %v", sel)
	}
	if _, err := selectExperiments([]string{"e99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	all, err := selectExperiments(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(benchExperiments) {
		t.Errorf("nil selection = %d experiments, want %d", len(all), len(benchExperiments))
	}
}

func TestRunBenchUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunBench(context.Background(), &buf, BenchOptions{Experiments: []string{"nope"}}); err == nil {
		t.Error("unknown experiment did not fail the run")
	}
}

// TestRunBenchEndToEnd runs a real (small) experiment, writes bench.json,
// and verifies that checking the run against its own output passes while a
// perturbed baseline fails — the full path the CI bench-regression job
// exercises.
func TestRunBenchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")

	var buf bytes.Buffer
	res, err := RunBench(context.Background(), &buf, BenchOptions{
		Experiments: []string{"e3"},
		Scale:       0.15,
		Seed:        1,
		ShowMetrics: true,
		JSONPath:    jsonPath,
	})
	if err != nil {
		t.Fatalf("RunBench: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "E3 (Figure 4a)") {
		t.Errorf("table missing from output:\n%s", out)
	}
	if !strings.Contains(out, "scorer.nm.evals") {
		t.Errorf("-metrics snapshot missing from output:\n%s", out)
	}

	er := res.Experiments["e3"]
	if er == nil {
		t.Fatal("no e3 entry in result")
	}
	if er.NS <= 0 || er.Allocs == 0 {
		t.Errorf("timing/alloc accounting empty: ns=%d allocs=%d", er.NS, er.Allocs)
	}
	if er.Work["scorer.nm.evals"] == 0 || er.Work["miner.candidates.fresh"] == 0 {
		t.Errorf("work counters empty: %v", er.Work)
	}
	for name := range er.Work {
		if strings.HasPrefix(name, "scorer.scratch.") || strings.HasPrefix(name, "scorer.worker.") {
			t.Errorf("nondeterministic counter %s leaked into the gate set", name)
		}
	}

	// Self-check passes.
	buf.Reset()
	if _, err := RunBench(context.Background(), &buf, BenchOptions{
		Experiments: []string{"e3"},
		Scale:       0.15,
		Seed:        1,
		CheckPath:   jsonPath,
		TolPct:      15,
	}); err != nil {
		t.Errorf("self-check failed: %v\n%s", err, buf.String())
	}

	// A perturbed baseline fails.
	bad, err := LoadBenchResult(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	bad.Experiments["e3"].Work["scorer.nm.evals"] /= 2
	badPath := filepath.Join(dir, "bad.json")
	if err := writeBenchJSON(badPath, bad); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := RunBench(context.Background(), &buf, BenchOptions{
		Experiments: []string{"e3"},
		Scale:       0.15,
		Seed:        1,
		CheckPath:   badPath,
		TolPct:      15,
	}); err == nil {
		t.Error("perturbed baseline did not fail the check")
	}
}

// TestRunBenchDeterministic is the end-to-end determinism check: two
// in-process runs of the same experiment at the same seed and scale must
// produce byte-identical work-counter blocks in bench.json. This is the
// property the determinism analyzer exists to protect — if it ever fails,
// some nondeterminism (clock, global RNG, map order) leaked into the gate
// counters.
func TestRunBenchDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment twice")
	}
	work := func(run int) []byte {
		var buf bytes.Buffer
		res, err := RunBench(context.Background(), &buf, BenchOptions{
			Experiments: []string{"e3"},
			Scale:       0.15,
			Seed:        1,
		})
		if err != nil {
			t.Fatalf("run %d: %v\n%s", run, err, buf.String())
		}
		er := res.Experiments["e3"]
		if er == nil || len(er.Work) == 0 {
			t.Fatalf("run %d: no e3 work counters", run)
		}
		// encoding/json sorts map keys, so this is the exact byte form of
		// the "work" block the CI gate reads out of bench.json.
		b, err := json.Marshal(er.Work)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		return b
	}
	first := work(1)
	second := work(2)
	if !bytes.Equal(first, second) {
		t.Errorf("work-counter block differs between identical runs:\nrun 1: %s\nrun 2: %s", first, second)
	}
}

func TestLoadBenchResultRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	if err := os.WriteFile(path, []byte(`{"schema": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchResult(path); err == nil {
		t.Error("schema-0 baseline accepted")
	}
	if _, err := LoadBenchResult(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing baseline accepted")
	}
}
