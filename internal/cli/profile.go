package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling (when cpuPath is non-empty) and
// returns a stop function that finishes the CPU profile and, when memPath
// is non-empty, writes a GC-settled heap profile. Either path may be empty;
// with both empty the returned stop is a no-op. Used by the trajmine and
// trajbench -cpuprofile/-memprofile flags.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cli: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("cli: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cli: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
