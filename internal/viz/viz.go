// Package viz renders terminal visualizations of grids, trajectory
// density and trajectory patterns, so trajmine's output can be inspected
// without leaving the shell. All rendering is pure string construction and
// fully tested.
package viz

import (
	"fmt"
	"math"
	"strings"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

// shades orders density glyphs from empty to full.
var shades = []rune{' ', '·', ':', '▒', '▓', '█'}

// Density renders the dataset's mean-location density on the grid as an
// ASCII heatmap: row 0 of the output is the TOP of the space (max Y). The
// optional title is printed above the map.
func Density(d traj.Dataset, g *grid.Grid, title string) string {
	counts := make([]int, g.NumCells())
	maxCount := 0
	for _, t := range d {
		for _, p := range t {
			idx := g.IndexOf(p.Mean)
			counts[idx]++
			if counts[idx] > maxCount {
				maxCount = counts[idx]
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeFrame(&b, g, func(idx int) rune {
		if counts[idx] == 0 {
			return shades[0]
		}
		// Log scale keeps sparse cells visible next to hot spots.
		frac := math.Log1p(float64(counts[idx])) / math.Log1p(float64(maxCount))
		level := 1 + int(frac*float64(len(shades)-2)+0.5)
		if level >= len(shades) {
			level = len(shades) - 1
		}
		return shades[level]
	})
	return b.String()
}

// Patterns renders up to 9 patterns on the grid: each pattern's cells are
// drawn with its 1-based digit; later positions of the same pattern
// overwrite earlier ones, and overlapping patterns show the last one
// drawn. Cells used by no pattern are blank.
func Patterns(ps []core.Pattern, g *grid.Grid, title string) string {
	marks := make(map[int]rune)
	for i, p := range ps {
		if i >= 9 {
			break
		}
		for _, cell := range p {
			marks[cell] = rune('1' + i)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeFrame(&b, g, func(idx int) rune {
		if r, ok := marks[idx]; ok {
			return r
		}
		return ' '
	})
	return b.String()
}

// PatternPath renders one pattern as an ordered path: its first position
// is 'a', the second 'b', and so on (wrapping after 'z'); a cell visited
// more than once shows its last letter.
func PatternPath(p core.Pattern, g *grid.Grid, title string) string {
	marks := make(map[int]rune)
	for i, cell := range p {
		marks[cell] = rune('a' + i%26)
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeFrame(&b, g, func(idx int) rune {
		if r, ok := marks[idx]; ok {
			return r
		}
		return ' '
	})
	return b.String()
}

// writeFrame draws the bordered grid, calling cell for every flat index.
// Rows are emitted top (max Y) to bottom.
func writeFrame(b *strings.Builder, g *grid.Grid, cell func(idx int) rune) {
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", g.NX()))
	b.WriteString("+\n")
	for y := g.NY() - 1; y >= 0; y-- {
		b.WriteString("|")
		for x := 0; x < g.NX(); x++ {
			b.WriteRune(cell(g.Index(grid.Cell{X: x, Y: y})))
		}
		b.WriteString("|\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", g.NX()))
	b.WriteString("+\n")
}
