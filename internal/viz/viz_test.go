package viz

import (
	"strings"
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

func lines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

func TestDensityShape(t *testing.T) {
	g := grid.NewSquare(5)
	d := traj.Dataset{{traj.P(0.1, 0.9, 0.01), traj.P(0.1, 0.9, 0.01)}}
	out := Density(d, g, "demo")
	ls := lines(out)
	// Title + top border + 5 rows + bottom border.
	if len(ls) != 8 {
		t.Fatalf("line count = %d:\n%s", len(ls), out)
	}
	if ls[0] != "demo" {
		t.Errorf("title = %q", ls[0])
	}
	if ls[1] != "+-----+" || ls[7] != "+-----+" {
		t.Errorf("borders wrong:\n%s", out)
	}
	// The data point is at x≈0.1 (col 0), y≈0.9 (top row = line 2), and
	// must be rendered with the fullest shade (it is the max cell).
	if r := []rune(ls[2])[1]; r != '█' {
		t.Errorf("hot cell = %q, want full shade:\n%s", r, out)
	}
	// An empty cell renders blank.
	if r := []rune(ls[6])[5]; r != ' ' {
		t.Errorf("cold cell = %q, want blank", r)
	}
}

func TestDensityLogScaleKeepsSparseVisible(t *testing.T) {
	g := grid.NewSquare(3)
	var tr traj.Trajectory
	// 100 points in one cell, 1 point in another.
	for i := 0; i < 100; i++ {
		tr = append(tr, traj.P(0.2, 0.2, 0.01))
	}
	tr = append(tr, traj.P(0.8, 0.8, 0.01))
	out := Density(traj.Dataset{tr}, g, "")
	if !strings.ContainsRune(out, '█') {
		t.Error("hot cell not full")
	}
	// The single-point cell must be visible (non-blank).
	ls := lines(out)
	if r := []rune(ls[1])[3]; r == ' ' {
		t.Errorf("sparse cell invisible:\n%s", out)
	}
}

func TestPatterns(t *testing.T) {
	g := grid.NewSquare(4)
	ps := []core.Pattern{{0, 1}, {15}}
	out := Patterns(ps, g, "pats")
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("pattern digits missing:\n%s", out)
	}
	ls := lines(out)
	// Cell 0 is bottom-left: last row before border, first column.
	if r := []rune(ls[5])[1]; r != '1' {
		t.Errorf("cell 0 = %q:\n%s", r, out)
	}
	// Cell 15 is top-right.
	if r := []rune(ls[2])[4]; r != '2' {
		t.Errorf("cell 15 = %q:\n%s", r, out)
	}
}

func TestPatternsCapsAtNine(t *testing.T) {
	g := grid.NewSquare(4)
	var ps []core.Pattern
	for i := 0; i < 12; i++ {
		ps = append(ps, core.Pattern{i})
	}
	out := Patterns(ps, g, "")
	if strings.ContainsRune(out, ':') || strings.Contains(out, "10") {
		t.Errorf("more than 9 digits rendered:\n%s", out)
	}
	if !strings.Contains(out, "9") {
		t.Errorf("ninth pattern missing:\n%s", out)
	}
}

func TestPatternPath(t *testing.T) {
	g := grid.NewSquare(4)
	out := PatternPath(core.Pattern{0, 1, 2}, g, "")
	for _, want := range []string{"a", "b", "c"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Wraps after z.
	long := make(core.Pattern, 30)
	for i := range long {
		long[i] = i % 16
	}
	_ = PatternPath(long, g, "") // must not panic
}

func TestFrameWidthNonSquare(t *testing.T) {
	g := grid.New(geom.UnitSquare(), 7, 3)
	out := Density(traj.Dataset{{traj.P(0.5, 0.5, 0.1)}}, g, "")
	ls := lines(out)
	if len(ls) != 5 {
		t.Fatalf("rows = %d", len(ls))
	}
	for _, l := range ls {
		if len([]rune(l)) != 9 { // 7 cells + 2 border chars
			t.Errorf("row width = %d: %q", len([]rune(l)), l)
		}
	}
}
