// Package geom provides the 2-D geometric primitives used throughout the
// TrajPattern system: points/vectors, rectangles, and distance helpers.
//
// The paper works in a continuous 2-D space that is later discretized into a
// grid (see internal/grid). All coordinates are float64 and the package is
// deliberately tiny and allocation-free.
package geom

import (
	"fmt"
	"math"
)

// Point is a location (or, equally, a velocity) in 2-D space.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// ChebyshevDist returns the L∞ distance between p and q. The pattern-group
// similarity test of the paper ("distance no larger than γ at every
// snapshot") is evaluated with the caller's choice of metric; Chebyshev is
// the natural companion of a rectangular grid.
func (p Point) ChebyshevDist(q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rotate returns p rotated by theta radians around the origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sin(theta), math.Cos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Angle returns the angle of the vector p in radians, in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Unit returns p normalized to length 1. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; a valid Rect has Min.X <= Max.X and Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by the two corner points, fixing the
// corner order if necessary.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// UnitSquare is the [0,1]×[0,1] rectangle used as the default mining space.
func UnitSquare() Rect { return Rect{Min: Point{0, 0}, Max: Point{1, 1}} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of all edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Expand returns r grown by d on every side. Negative d shrinks r; the
// result is normalized so Min <= Max still holds.
func (r Rect) Expand(d float64) Rect {
	return NewRect(Point{r.Min.X - d, r.Min.Y - d}, Point{r.Max.X + d, r.Max.Y + d})
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

// BoundingRect returns the smallest rectangle containing all points. It
// returns the zero Rect for an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i].Dist(pts[i-1])
	}
	return total
}

// PointAlongPolyline returns the point at arc-length distance d from the
// start of the (open) polyline through pts, clamping to the endpoints. It
// panics if pts is empty.
func PointAlongPolyline(pts []Point, d float64) Point {
	if len(pts) == 0 {
		panic("geom: PointAlongPolyline on empty polyline")
	}
	if d <= 0 {
		return pts[0]
	}
	for i := 1; i < len(pts); i++ {
		seg := pts[i].Dist(pts[i-1])
		if d <= seg {
			if seg == 0 {
				return pts[i]
			}
			return pts[i-1].Lerp(pts[i], d/seg)
		}
		d -= seg
	}
	return pts[len(pts)-1]
}
