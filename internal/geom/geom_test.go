package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.DistSq(q); got != 25 {
		t.Errorf("DistSq = %v, want 25", got)
	}
	if got := p.ChebyshevDist(q); got != 4 {
		t.Errorf("ChebyshevDist = %v, want 4", got)
	}
	if got := p.ManhattanDist(q); got != 7 {
		t.Errorf("ManhattanDist = %v, want 7", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRotate(t *testing.T) {
	p := Pt(1, 0)
	got := p.Rotate(math.Pi / 2)
	if !almostEq(got.X, 0, 1e-12) || !almostEq(got.Y, 1, 1e-12) {
		t.Errorf("Rotate(π/2) = %v, want (0,1)", got)
	}
}

func TestUnit(t *testing.T) {
	if got := Pt(3, 4).Unit(); !almostEq(got.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", got.Norm())
	}
	if got := Pt(0, 0).Unit(); got != Pt(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() || Pt(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite point reported finite")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(2, 3), Pt(0, 1)) // corners given out of order
	if r.Min != Pt(0, 1) || r.Max != Pt(2, 3) {
		t.Fatalf("NewRect normalization failed: %v", r)
	}
	if r.Width() != 2 || r.Height() != 2 || r.Area() != 4 {
		t.Errorf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(1, 2) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(r.Min) || !r.Contains(r.Max) {
		t.Error("Contains failed on interior/boundary")
	}
	if r.Contains(Pt(-0.01, 2)) {
		t.Error("Contains accepted outside point")
	}
}

func TestRectClampExpandUnion(t *testing.T) {
	r := UnitSquare()
	if got := r.Clamp(Pt(2, -1)); got != Pt(1, 0) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Expand(0.5); got.Min != Pt(-0.5, -0.5) || got.Max != Pt(1.5, 1.5) {
		t.Errorf("Expand = %v", got)
	}
	s := NewRect(Pt(2, 2), Pt(3, 3))
	u := r.Union(s)
	if u.Min != Pt(0, 0) || u.Max != Pt(3, 3) {
		t.Errorf("Union = %v", u)
	}
	if r.Intersects(s) {
		t.Error("disjoint rects reported intersecting")
	}
	if !r.Intersects(NewRect(Pt(0.5, 0.5), Pt(2, 2))) {
		t.Error("overlapping rects reported disjoint")
	}
}

func TestBoundingRect(t *testing.T) {
	if got := BoundingRect(nil); got != (Rect{}) {
		t.Errorf("empty BoundingRect = %v", got)
	}
	pts := []Point{Pt(1, 5), Pt(-2, 0), Pt(3, 3)}
	r := BoundingRect(pts)
	if r.Min != Pt(-2, 0) || r.Max != Pt(3, 5) {
		t.Errorf("BoundingRect = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("BoundingRect does not contain %v", p)
		}
	}
}

func TestPolyline(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1)}
	if got := PolylineLength(pts); got != 2 {
		t.Errorf("PolylineLength = %v", got)
	}
	if got := PointAlongPolyline(pts, -1); got != Pt(0, 0) {
		t.Errorf("before start = %v", got)
	}
	if got := PointAlongPolyline(pts, 0.5); got != Pt(0.5, 0) {
		t.Errorf("mid first segment = %v", got)
	}
	if got := PointAlongPolyline(pts, 1.5); got != Pt(1, 0.5) {
		t.Errorf("mid second segment = %v", got)
	}
	if got := PointAlongPolyline(pts, 10); got != Pt(1, 1) {
		t.Errorf("past end = %v", got)
	}
}

func TestPointAlongPolylinePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty polyline")
		}
	}()
	PointAlongPolyline(nil, 1)
}

// Property: the triangle inequality holds for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if !a.IsFinite() || !b.IsFinite() || !c.IsFinite() {
			return true
		}
		// Guard against overflow for huge random values.
		if a.Norm() > 1e150 || b.Norm() > 1e150 || c.Norm() > 1e150 {
			return true
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Chebyshev <= Euclid <= Manhattan for any pair of points.
func TestQuickMetricOrdering(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		if !a.IsFinite() || !b.IsFinite() || a.Norm() > 1e150 || b.Norm() > 1e150 {
			return true
		}
		d2, dInf, d1 := a.Dist(b), a.ChebyshevDist(b), a.ManhattanDist(b)
		eps := 1e-9 * (1 + d1)
		return dInf <= d2+eps && d2 <= d1+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp always lands inside the rectangle and is a no-op for
// points already inside.
func TestQuickClamp(t *testing.T) {
	f := func(px, py float64) bool {
		r := UnitSquare()
		p := Pt(px, py)
		if !p.IsFinite() {
			return true
		}
		q := r.Clamp(p)
		if !r.Contains(q) {
			return false
		}
		if r.Contains(p) && q != p {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BoundingRect contains every input point.
func TestQuickBoundingRect(t *testing.T) {
	f := func(coords []float64) bool {
		var pts []Point
		for i := 0; i+1 < len(coords); i += 2 {
			p := Pt(coords[i], coords[i+1])
			if !p.IsFinite() {
				return true
			}
			pts = append(pts, p)
		}
		r := BoundingRect(pts)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
