package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"trajpattern/internal/faultio"
)

// This file exports a tracer's records in the Chrome trace-event format
// ("catapult" JSON), the array-of-events layout that Perfetto and
// chrome://tracing load directly: spans become complete ("X") events with
// a ts/dur pair, instant events become thread-scoped instant ("i") events.
// Reference: the Trace Event Format document of the catapult project.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  *int64 `json:"dur,omitempty"` // "X" events only
	PID  int    `json:"pid"`
	TID  int64  `json:"tid"`
	S    string `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Args Attrs  `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object form of the format (preferred
// over the bare array because it tolerates trailing metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// category derives the Chrome trace category from a record name: the
// leading dot-separated segment ("miner", "scorer", "stream", "groups").
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// WriteChromeTrace writes every buffered record in Chrome trace-event
// JSON. Timestamps are microseconds since the tracer's creation, the unit
// the format specifies. No-op on a nil tracer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  category(e.Name),
			TS:   e.TS,
			PID:  1,
			TID:  e.TID,
			Args: e.Attrs,
		}
		if e.Kind == KindSpan {
			ce.Ph = "X"
			dur := e.Dur
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ct); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return nil
}

// WriteChromeTraceFile writes the Chrome trace-event JSON to path
// atomically (temp file + fsync + rename). No-op on a nil tracer.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	if t == nil {
		return nil
	}
	return faultio.WriteFileAtomic(nil, path, t.WriteChromeTrace)
}
