package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tl := tr.Local()
	if tl != nil {
		t.Fatal("nil tracer returned a non-nil Local")
	}
	tl.Event("x", Attrs{"a": 1})
	sp := tl.Span("y", nil)
	if sp != nil {
		t.Fatal("nil Local returned a non-nil Span")
	}
	sp.Attr("k", 1)
	sp.End()
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Len() != 0 {
		t.Error("nil tracer Len() != 0")
	}
	if st := tr.Status(); st.Enabled {
		t.Error("nil tracer reports Enabled")
	}
	if err := tr.Journal(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer Journal: %v", err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer WriteChromeTrace: %v", err)
	}
}

func TestSpanAndEventOrdering(t *testing.T) {
	tr := New()
	tl := tr.Local()
	sp := tl.Span("miner.iteration", Attrs{"iter": 1})
	tl.Event("miner.candidate.admitted", Attrs{"pattern": "3-4", "nm": -2.5})
	tl.Event("miner.candidate.pruned", Attrs{"pattern": "3-4-5"})
	sp.Attr("q", 7).End()

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	// The span took its seq at start, so it sorts before its contents.
	if events[0].Name != "miner.iteration" || events[0].Kind != KindSpan {
		t.Errorf("first record = %+v, want the miner.iteration span", events[0])
	}
	if events[0].Attrs["q"] != 7 {
		t.Errorf("span end-attr q = %v, want 7", events[0].Attrs["q"])
	}
	if events[1].Name != "miner.candidate.admitted" || events[2].Name != "miner.candidate.pruned" {
		t.Errorf("event order wrong: %s, %s", events[1].Name, events[2].Name)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Errorf("seq not strictly increasing at %d", i)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestSpanDuration(t *testing.T) {
	tr := New()
	tl := tr.Local()
	sp := tl.Span("scorer.batch", nil)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	e := tr.Events()[0]
	if e.Dur < 1000 {
		t.Errorf("span duration %dµs, want >= 1000", e.Dur)
	}
	if e.TS < 0 {
		t.Errorf("negative timestamp %d", e.TS)
	}
}

func TestConcurrentLocals(t *testing.T) {
	tr := New()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		tl := tr.Local()
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tl.Span("stream.pass", nil)
				tl.Event("tick", Attrs{"i": i})
				sp.End()
			}
		}()
	}
	wg.Wait()
	events := tr.Events()
	if len(events) != workers*per*2 {
		t.Fatalf("got %d events, want %d", len(events), workers*per*2)
	}
	seen := make(map[int64]bool)
	for i, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if i > 0 && e.Seq < events[i-1].Seq {
			t.Fatal("events not sorted by seq")
		}
	}
	st := tr.Status()
	if st.OpenSpans != 0 {
		t.Errorf("open spans = %d, want 0", st.OpenSpans)
	}
	if st.ByName["stream.pass"] != workers*per || st.ByName["tick"] != workers*per {
		t.Errorf("by-name counts wrong: %v", st.ByName)
	}
}

func TestStatusOpenSpans(t *testing.T) {
	tr := New()
	tl := tr.Local()
	sp := tl.Span("miner.run", nil)
	if got := tr.Status().OpenSpans; got != 1 {
		t.Errorf("open spans = %d, want 1", got)
	}
	// Open spans are not in the journal yet.
	if tr.Len() != 0 {
		t.Errorf("Len = %d with only an open span, want 0", tr.Len())
	}
	sp.End()
	if got := tr.Status().OpenSpans; got != 0 {
		t.Errorf("open spans after End = %d, want 0", got)
	}
}

// TestJournalSchemaGolden pins the JSONL journal schema: records produced
// through the public API, with their (nondeterministic) timestamps zeroed,
// must serialize exactly to these lines. Changing a field name, dropping a
// field, or reordering the struct is a format break — bump consumers and
// this golden together.
func TestJournalSchemaGolden(t *testing.T) {
	tr := New()
	tl := tr.Local()
	sp := tl.Span("miner.iteration", Attrs{"iter": 1})
	tl.Event("miner.candidate.admitted", Attrs{"iter": 1, "nm": -12.5, "pattern": "3-4"})
	sp.Attr("q", 42).End()

	events := tr.Events()
	for i := range events {
		events[i].TS = 0
		events[i].Dur = 0
	}
	var buf bytes.Buffer
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(line, '\n'))
	}
	golden := strings.Join([]string{
		`{"seq":1,"kind":"span","name":"miner.iteration","tid":1,"ts_us":0,"attrs":{"iter":1,"q":42}}`,
		`{"seq":2,"kind":"event","name":"miner.candidate.admitted","tid":1,"ts_us":0,"attrs":{"iter":1,"nm":-12.5,"pattern":"3-4"}}`,
		``,
	}, "\n")
	if got := buf.String(); got != golden {
		t.Errorf("journal schema drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// The real Journal output must parse line-by-line into the same schema
	// (same key sets), timestamps included.
	var real bytes.Buffer
	if err := tr.Journal(&real); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(real.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	wantKeys := map[string][]string{
		KindSpan:  {"seq", "kind", "name", "tid", "ts_us", "attrs"}, // dur_us omitted when 0
		KindEvent: {"seq", "kind", "name", "tid", "ts_us", "attrs"},
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("journal line is not JSON: %q: %v", line, err)
		}
		kind, _ := m["kind"].(string)
		for _, k := range wantKeys[kind] {
			if _, ok := m[k]; !ok {
				t.Errorf("journal %s record missing key %q: %s", kind, k, line)
			}
		}
		for k := range m {
			switch k {
			case "seq", "kind", "name", "tid", "ts_us", "dur_us", "attrs":
			default:
				t.Errorf("journal record has unpinned key %q: %s", k, line)
			}
		}
	}
}

// TestChromeTraceValid checks that the Chrome export is well-formed
// trace-event JSON: a traceEvents array whose entries carry the required
// name/ph/ts/pid/tid fields, spans as "X" with a duration, instants as
// thread-scoped "i".
func TestChromeTraceValid(t *testing.T) {
	tr := New()
	tl := tr.Local()
	sp := tl.Span("miner.iteration", Attrs{"iter": 3})
	tl.Event("miner.candidate.pruned", Attrs{"pattern": "1-2", "reason": "extension"})
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("traceEvents has %d entries, want 2", len(ct.TraceEvents))
	}
	for _, e := range ct.TraceEvents {
		for _, k := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("trace event missing %q: %v", k, e)
			}
		}
		switch e["ph"] {
		case "X":
			if _, ok := e["dur"]; !ok {
				t.Errorf("X event missing dur: %v", e)
			}
			if e["cat"] != "miner" {
				t.Errorf("span category = %v, want miner", e["cat"])
			}
		case "i":
			if e["s"] != "t" {
				t.Errorf("instant event scope = %v, want t", e["s"])
			}
		default:
			t.Errorf("unexpected ph %v", e["ph"])
		}
	}
}

func TestJournalAndChromeFiles(t *testing.T) {
	tr := New()
	tl := tr.Local()
	tl.Span("groups.cluster", Attrs{"patterns": 5}).End()

	dir := t.TempDir()
	jp := dir + "/run.trace"
	cp := dir + "/run.trace.json"
	if err := tr.JournalFile(jp); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTraceFile(cp); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jp, cp} {
		if fi := mustStat(t, p); fi == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func mustStat(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
