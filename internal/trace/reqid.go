package trace

import "context"

// requestIDKey is the private context key carrying a request-correlation
// ID from the HTTP edge down into the miner, so spans recorded deep in
// the search (miner.run, shard.run) can carry the same ID the client saw
// in its X-Request-ID response header.
type requestIDKey struct{}

// WithRequestID returns a context carrying the correlation ID. An empty
// id returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the correlation ID carried by ctx ("" when none
// is set).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
