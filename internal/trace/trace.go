// Package trace is a small, dependency-free structured tracing layer for
// the miner's phase structure: where internal/obs answers "how much work
// did a run do", trace answers "when and why". A Tracer collects spans
// (timed phases such as one grow iteration or one ScoreAll batch) and
// instant events (a candidate admitted, pruned or re-admitted, with its
// pattern id and NM value) on a shared timeline and serializes them as a
// JSON-lines journal (Journal) and as a Chrome trace-event file
// (WriteChromeTrace) loadable in Perfetto or chrome://tracing.
//
// The design contract mirrors internal/obs: every handle is safe on a nil
// receiver, so instrumented code resolves a per-goroutine *Local once up
// front —
//
//	tl := cfg.Tracer.Local() // nil when Tracer is nil
//	...
//	if tl != nil { tl.Event("miner.candidate.pruned", trace.Attrs{...}) }
//
// — and, with no tracer attached, hot paths pay only a nil check (the
// explicit guard also skips building the Attrs map). When a tracer is
// attached, each Local buffers its records behind its own mutex, so
// concurrent goroutines never contend on a shared lock; a global atomic
// sequence number preserves cross-goroutine ordering for the journal.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"trajpattern/internal/faultio"
)

// Attrs carries the structured payload of a span or event. Values must be
// JSON-serializable; encoding/json sorts the keys, so serialized attrs are
// deterministic. The map is retained by reference — do not mutate it after
// passing it in.
type Attrs map[string]any

// Kinds of journal records.
const (
	KindSpan  = "span"  // a timed phase (has dur_us)
	KindEvent = "event" // an instant event
)

// Event is one journal record: a completed span or an instant event. The
// JSON field set is the journal schema, pinned by a golden test — extend it
// only by appending optional (omitempty) fields.
type Event struct {
	// Seq is a process-wide sequence number; spans take theirs at start,
	// so a span sorts before the events it encloses.
	Seq int64 `json:"seq"`
	// Kind is KindSpan or KindEvent.
	Kind string `json:"kind"`
	// Name identifies the phase or event type (e.g. "miner.iteration",
	// "miner.candidate.pruned"). DESIGN.md maps each name to its §4 phase.
	Name string `json:"name"`
	// TID identifies the Local (≈ goroutine) that recorded the event.
	TID int64 `json:"tid"`
	// TS is the start time in microseconds since the tracer was created.
	TS int64 `json:"ts_us"`
	// Dur is the span duration in microseconds (spans only).
	Dur int64 `json:"dur_us,omitempty"`
	// Attrs is the structured payload.
	Attrs Attrs `json:"attrs,omitempty"`
}

// Tracer collects spans and events from any number of goroutines. The zero
// value is not usable; call New. A nil *Tracer is a valid "disabled"
// tracer: Local returns a nil *Local whose methods are no-ops.
type Tracer struct {
	epoch time.Time
	seq   atomic.Int64
	open  atomic.Int64 // spans started but not yet ended

	mu      sync.Mutex
	locals  []*Local
	nextTID int64
}

// New returns an empty tracer whose timeline starts now.
func New() *Tracer { return &Tracer{epoch: time.Now()} }

// Local returns a new per-goroutine recording handle. Each Local buffers
// behind its own uncontended mutex; hand one Local to each goroutine that
// records (sharing one is safe, merely slower). Returns nil on a nil
// tracer.
func (t *Tracer) Local() *Local {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTID++
	l := &Local{tr: t, tid: t.nextTID}
	t.locals = append(t.locals, l)
	return l
}

// us returns the tracer-relative timestamp of tm in microseconds.
func (t *Tracer) us(tm time.Time) int64 { return int64(tm.Sub(t.epoch) / time.Microsecond) }

// Local is one goroutine's buffered recording handle. All methods are safe
// on a nil receiver, and safe (if contended) for concurrent use.
type Local struct {
	tr  *Tracer
	tid int64

	mu  sync.Mutex
	buf []Event
}

func (l *Local) append(e Event) {
	l.mu.Lock()
	l.buf = append(l.buf, e)
	l.mu.Unlock()
}

// Event records an instant event. No-op on a nil Local — but callers on
// hot paths should still guard with `if l != nil` so the Attrs map is not
// built when tracing is disabled.
func (l *Local) Event(name string, attrs Attrs) {
	if l == nil {
		return
	}
	l.append(Event{
		Seq:   l.tr.seq.Add(1),
		Kind:  KindEvent,
		Name:  name,
		TID:   l.tid,
		TS:    l.tr.us(time.Now()),
		Attrs: attrs,
	})
}

// Span is one in-flight timed phase, created by Local.Span and finished by
// End. All methods are safe on a nil receiver.
type Span struct {
	l     *Local
	name  string
	seq   int64
	start time.Time
	attrs Attrs
}

// Span starts a timed phase. The span takes its sequence number now, so in
// the journal it sorts before the events recorded inside it. Returns nil
// on a nil Local.
func (l *Local) Span(name string, attrs Attrs) *Span {
	if l == nil {
		return nil
	}
	l.tr.open.Add(1)
	return &Span{l: l, name: name, seq: l.tr.seq.Add(1), start: time.Now(), attrs: attrs}
}

// Attr sets one attribute on the span (e.g. a result size known only at
// the end of the phase) and returns the span for chaining.
func (s *Span) Attr(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = Attrs{}
	}
	s.attrs[key] = v
	return s
}

// End finishes the span and buffers its record. Calling End more than once
// records the span more than once; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.l.append(Event{
		Seq:   s.seq,
		Kind:  KindSpan,
		Name:  s.name,
		TID:   s.l.tid,
		TS:    s.l.tr.us(s.start),
		Dur:   int64(now.Sub(s.start) / time.Microsecond),
		Attrs: s.attrs,
	})
	s.l.tr.open.Add(-1)
}

// Events returns a copy of every buffered record, ordered by sequence
// number (program order within a goroutine; spans before their contents).
// Nil tracer yields nil. Spans still open are not included.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	locals := append([]*Local(nil), t.locals...)
	t.mu.Unlock()
	var out []Event
	for _, l := range locals {
		l.mu.Lock()
		out = append(out, l.buf...)
		l.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of buffered records (0 for a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	locals := append([]*Local(nil), t.locals...)
	t.mu.Unlock()
	n := 0
	for _, l := range locals {
		l.mu.Lock()
		n += len(l.buf)
		l.mu.Unlock()
	}
	return n
}

// Status is a live summary of a tracer, served by the CLI debug endpoint
// (/trace/status) for in-flight runs.
type Status struct {
	Enabled   bool           `json:"enabled"`
	Events    int            `json:"events"`     // records buffered so far
	OpenSpans int64          `json:"open_spans"` // spans started but not ended
	ByName    map[string]int `json:"by_name,omitempty"`
}

// Status summarizes the tracer's buffered records. A nil tracer reports
// Enabled false.
func (t *Tracer) Status() Status {
	if t == nil {
		return Status{}
	}
	s := Status{Enabled: true, OpenSpans: t.open.Load(), ByName: map[string]int{}}
	for _, e := range t.Events() {
		s.Events++
		s.ByName[e.Name]++
	}
	if len(s.ByName) == 0 {
		s.ByName = nil
	}
	return s
}

// Journal writes every buffered record as one JSON object per line, in
// sequence order. No-op on a nil tracer.
func (t *Tracer) Journal(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: marshal event %d: %w", e.Seq, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("trace: write journal: %w", err)
		}
	}
	return nil
}

// JournalFile writes the JSONL journal to path atomically (temp file +
// fsync + rename), so an interrupted flush never leaves a torn journal.
// No-op on a nil tracer.
func (t *Tracer) JournalFile(path string) error {
	if t == nil {
		return nil
	}
	return faultio.WriteFileAtomic(nil, path, t.Journal)
}
