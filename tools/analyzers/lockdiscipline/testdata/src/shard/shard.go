// Fixture for the lockdiscipline analyzer: miniatures of the sharded
// runtime's lock shapes.
package shard

import "sync"

type pool struct {
	mu     sync.Mutex
	queues [][]int
}

// good: lock with deferred unlock covers every exit, including panics.
func (p *pool) next() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queues) == 0 {
		return -1
	}
	return p.queues[0][0]
}

// good: straight-line lock/unlock.
func (p *pool) size() int {
	p.mu.Lock()
	n := len(p.queues)
	p.mu.Unlock()
	return n
}

// good: every branch unlocks before returning (the guard.Acquire shape).
func (p *pool) take() (int, bool) {
	p.mu.Lock()
	if len(p.queues) == 0 {
		p.mu.Unlock()
		return 0, false
	}
	q := p.queues[0]
	if len(q) == 0 {
		p.mu.Unlock()
		return 0, false
	}
	p.mu.Unlock()
	return q[0], true
}

// leakyReturn exits with the lock held on the early-return path: flagged.
func (p *pool) leakyReturn() int {
	p.mu.Lock() // want `p.mu locked here is still held on the path returning at line`
	if len(p.queues) == 0 {
		return -1
	}
	n := len(p.queues)
	p.mu.Unlock()
	return n
}

// doubleLock re-acquires the lock it already holds: self-deadlock.
func (p *pool) doubleLock() {
	p.mu.Lock()
	p.mu.Lock() // want `p.mu is acquired at line \d+ while already held`
	p.mu.Unlock()
	p.mu.Unlock()
}

type index struct {
	mu sync.RWMutex
	m  map[string]int
}

// good: read lock with deferred read unlock.
func (ix *index) get(k string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m[k]
}

// readThenWrite upgrades while read-held: a writer queued between the two
// acquisitions deadlocks this goroutine.
func (ix *index) readThenWrite(k string) {
	ix.mu.RLock()
	ix.mu.Lock() // want `ix.mu is acquired at line \d+ while already held`
	ix.m[k] = 0
	ix.mu.Unlock()
	ix.mu.RUnlock()
}

// handoff returns holding the lock by design: waived with a reason.
func (p *pool) handoff() {
	p.mu.Lock() //trajlint:allow lockdiscipline -- fixture: lock handed to caller, released by closeLocked
}

func (p *pool) closeLocked() {
	p.mu.Unlock()
}

// stale carries a reason-less waiver: the directive itself is flagged and
// the leak still reported.
func (p *pool) stale() {
	//trajlint:allow lockdiscipline // want `malformed trajlint directive`
	p.mu.Lock() // want `p.mu locked here is still held`
}

// byValue copies the pool (and its mutex) through a value parameter.
func byValue(p pool) int { // want `parameter of byValue passes a value containing sync.Mutex by copy`
	return len(p.queues)
}

// valueReceiver copies the pool on every call.
func (p pool) valueReceiver() int { // want `receiver of valueReceiver passes a value containing sync.Mutex by copy`
	return len(p.queues)
}

// copyAssign copies live lock state into a local.
func copyAssign(p *pool) {
	cp := *p // want `assignment copies a value containing sync.Mutex`
	_ = cp
}

// rangeCopy copies each element's WaitGroup.
type job struct {
	wg sync.WaitGroup
}

func rangeCopy(jobs []job) {
	for _, j := range jobs { // want `range clause copies a value containing sync.WaitGroup`
		_ = j
	}
}

// pointers are fine: no copy.
func byPointer(p *pool) int {
	return len(p.queues)
}
