// Fixture: lock shapes outside lockdiscipline's scope produce no
// diagnostics.
package outside

import "sync"

type box struct{ mu sync.Mutex }

func leaky(b *box) {
	b.mu.Lock() // out of scope: not flagged
}
