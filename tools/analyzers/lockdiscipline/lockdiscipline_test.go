package lockdiscipline_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/internal/checktest"
	"trajpattern/tools/analyzers/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	checktest.Run(t, lockdiscipline.Analyzer,
		filepath.Join("testdata", "src", "shard"), "trajpattern/internal/core/shard")
}

func TestLockDisciplineOutsideScope(t *testing.T) {
	checktest.Run(t, lockdiscipline.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/report")
}
