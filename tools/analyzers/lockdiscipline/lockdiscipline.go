// Package lockdiscipline enforces the repo's mutex discipline in the
// concurrent packages, on every control-flow path rather than only the
// schedules the race detector happens to see:
//
//  1. Release on all paths: every sync.Mutex/RWMutex Lock or RLock must
//     reach a matching Unlock/RUnlock on every path out of the function.
//     A `defer mu.Unlock()` satisfies all later exits, including panic
//     unwinds — which is why the diagnostic suggests it; a manual unlock
//     satisfies only the paths that execute it.
//
//  2. No self-deadlock: acquiring a lock while the same lock expression
//     is already held on that path is reported. This includes
//     RLock-after-RLock — a reader re-entering its own read lock
//     deadlocks the moment a writer queues between the two acquisitions.
//
//  3. No lock copies: a value (non-pointer) parameter, result, receiver,
//     declaration or assignment whose type contains a sync.Mutex,
//     sync.RWMutex, sync.WaitGroup, sync.Once or sync.Cond copies live
//     synchronization state. (go vet's copylocks overlaps here; this pass
//     keeps the property enforced by the same suite that owns the other
//     concurrency invariants, with the same waiver syntax.)
//
// The analysis is intraprocedural and tracks locks only when the locked
// expression is a chain of identifiers and field selections ("mu",
// "a.mu", "s.state.mu") rooted at a resolvable object; locks reached
// through calls, map/slice indexing or interface values are not tracked.
// Suppress an intentional hand-off (a function that returns holding the
// lock) with `//trajlint:allow lockdiscipline -- reason`.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check lock release on all paths, self-deadlock, and lock copies

Every Lock/RLock must reach its Unlock/RUnlock on every exit path (defer
covers panic unwinds); re-acquiring a held lock self-deadlocks; and values
containing sync.Mutex/WaitGroup must not be copied.`

const name = "lockdiscipline"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/obs,trajpattern/internal/obs/slogx,trajpattern/internal/trace,"+
			"trajpattern/internal/serve,trajpattern/internal/serve/guard,trajpattern/internal/serve/chaos,"+
			"trajpattern/internal/core/shard,trajpattern/internal/core/shard/supervisor,trajpattern/internal/core/shard/supervisor/chaos,"+
			"trajpattern/internal/retry,trajpattern/internal/cli,trajpattern/internal/ingest,trajpattern/internal/ingest/chaos",
		"comma-separated package paths (or /-suffixes) held to the lock discipline")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				return
			}
			body, g = d.Body, cfgs.FuncDecl(d)
			checkCopySignature(pass, ix, d)
		case *ast.FuncLit:
			body, g = d.Body, cfgs.FuncLit(d)
		}
		if g != nil {
			checkPaths(pass, ix, g, body)
		}
	})
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		checkCopyStmt(pass, ix, n)
	})
	return nil, nil
}

// --- lock-event extraction -------------------------------------------------

type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockEvent is one Lock/Unlock-family call found in a CFG node.
type lockEvent struct {
	op       lockOp
	key      string // canonical lock expression, e.g. "a.mu"
	pos      token.Pos
	deferred bool
}

// lockCall interprets call as a mutex operation on a trackable lock
// expression, returning its event. ok is false for non-mutex calls and
// for locks the analysis cannot name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockEvent{}, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return lockEvent{}, false
	}
	key, ok := exprKey(pass, sel.X)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{op: op, key: key, pos: call.Pos()}, true
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprKey canonicalizes a chain of identifiers and field selections into a
// stable key rooted at the base identifier's object identity (so shadowed
// variables get distinct keys).
func exprKey(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return "", false
			}
			parts = append(parts, fmt.Sprintf("%p/%s", obj, x.Name))
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		default:
			return "", false
		}
	}
}

// nodeEvents extracts the lock events of one CFG node in source order.
// Function literals inside the node are skipped: their bodies have their
// own CFGs and are analyzed separately.
func nodeEvents(pass *analysis.Pass, n ast.Node) []lockEvent {
	var evs []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch c := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if m == n {
					return true
				}
				walk(c.Call, true)
				return false
			case *ast.CallExpr:
				if ev, ok := lockCall(pass, c); ok {
					ev.deferred = deferred
					evs = append(evs, ev)
				}
			}
			return true
		})
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		walk(d.Call, true)
		return evs
	}
	walk(n, false)
	return evs
}

// --- path analysis ---------------------------------------------------------

// held is the per-path lock state: which keys are held, at which Lock
// site, and which keys a reached defer will release at every later exit.
type held struct {
	locks    map[string]lockEvent
	deferred map[string]bool
}

func (h held) clone() held {
	c := held{locks: make(map[string]lockEvent, len(h.locks)), deferred: make(map[string]bool, len(h.deferred))}
	for k, v := range h.locks {
		c.locks[k] = v
	}
	for k := range h.deferred {
		c.deferred[k] = true
	}
	return c
}

// sig is a canonical signature of the state for the visited-set.
func (h held) sig() string {
	keys := make([]string, 0, len(h.locks)+len(h.deferred))
	for k := range h.locks {
		keys = append(keys, "L"+k)
	}
	for k := range h.deferred {
		keys = append(keys, "D"+k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, "|")
}

// checkPaths walks the CFG tracking the lock state along every path and
// reports locks that escape through a return and re-acquisitions of held
// locks. Reports are deduplicated per site.
func checkPaths(pass *analysis.Pass, ix *directive.Index, g *cfg.CFG, body *ast.BlockStmt) {
	if len(g.Blocks) == 0 {
		return
	}
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		ix.Report(pass, analysis.Diagnostic{Pos: pos, Message: msg})
	}

	type state struct {
		b *cfg.Block
		h held
	}
	type visitKey struct {
		b   *cfg.Block
		sig string
	}
	seen := make(map[visitKey]bool)
	start := state{g.Blocks[0], held{locks: map[string]lockEvent{}, deferred: map[string]bool{}}}
	stack := []state{start}
	steps := 0
	for len(stack) > 0 {
		if steps++; steps > 50000 {
			return // pathological CFG: stay silent rather than slow
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h := st.h.clone()
		for _, n := range st.b.Nodes {
			for _, ev := range nodeEvents(pass, n) {
				switch ev.op {
				case opLock, opRLock:
					if ev.deferred {
						continue // defer mu.Lock() is nonsense; out of scope
					}
					if prev, ok := h.locks[ev.key]; ok {
						report(ev.pos, fmt.Sprintf(
							"%s is acquired at line %d while already held (locked at line %d): this path self-deadlocks",
							keyDisplay(ev.key), pass.Fset.Position(ev.pos).Line, pass.Fset.Position(prev.pos).Line))
						continue
					}
					h.locks[ev.key] = ev
				case opUnlock, opRUnlock:
					if ev.deferred {
						h.deferred[ev.key] = true
					} else {
						delete(h.locks, ev.key)
					}
				}
			}
		}
		if ret := st.b.Return(); ret != nil {
			for k, ev := range h.locks {
				if !h.deferred[k] {
					report(ev.pos, fmt.Sprintf(
						"%s locked here is still held on the path returning at line %d; unlock it on every path (or use `defer %s.Unlock()`)",
						keyDisplay(k), pass.Fset.Position(ret.Pos()).Line, keyDisplay(k)))
				}
			}
			continue
		}
		if len(st.b.Succs) == 0 {
			// Fall-off-the-end or panic block. cfg gives the body's exit
			// block no successors and no return statement; treat it as a
			// normal exit. Pure panic blocks are exempt (defer-released
			// locks cover them; a manual unlock cannot).
			if st.b.Live && !endsInPanic(st.b) {
				for k, ev := range h.locks {
					if !h.deferred[k] {
						report(ev.pos, fmt.Sprintf(
							"%s locked here is still held when the function falls off the end; unlock it on every path (or use `defer %s.Unlock()`)",
							keyDisplay(k), keyDisplay(k)))
					}
				}
			}
			continue
		}
		for _, succ := range st.b.Succs {
			k := visitKey{succ, h.sig()}
			if seen[k] {
				continue
			}
			seen[k] = true
			stack = append(stack, state{succ, h.clone()})
		}
	}
	_ = body
}

// endsInPanic reports whether the block's last node is a call to panic.
func endsInPanic(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	found := false
	ast.Inspect(b.Nodes[len(b.Nodes)-1], func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// keyDisplay strips the object-identity prefixes from a lock key for
// human-readable diagnostics ("a.mu").
func keyDisplay(key string) string {
	parts := strings.Split(key, ".")
	if i := strings.IndexByte(parts[0], '/'); i >= 0 {
		parts[0] = parts[0][i+1:]
	}
	return strings.Join(parts, ".")
}

// --- lock-copy checks ------------------------------------------------------

// containsLock reports whether t transitively contains one of the sync
// types that must not be copied, returning the offender's name.
func containsLock(t types.Type) (string, bool) {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsLockSeen(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return "", false
}

// checkCopySignature reports value receivers, parameters and results whose
// type contains a lock.
func checkCopySignature(pass *analysis.Pass, ix *directive.Index, d *ast.FuncDecl) {
	checkField := func(f *ast.Field, role string) {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || tv.Type == nil {
			return
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return
		}
		if name, has := containsLock(tv.Type); has {
			ix.Report(pass, analysis.Diagnostic{
				Pos: f.Pos(),
				Message: fmt.Sprintf(
					"%s of %s passes a value containing %s by copy; use a pointer",
					role, d.Name.Name, name),
			})
		}
	}
	if d.Recv != nil {
		for _, f := range d.Recv.List {
			checkField(f, "receiver")
		}
	}
	if d.Type.Params != nil {
		for _, f := range d.Type.Params.List {
			checkField(f, "parameter")
		}
	}
	if d.Type.Results != nil {
		for _, f := range d.Type.Results.List {
			checkField(f, "result")
		}
	}
}

// checkCopyStmt reports assignments, declarations and range clauses that
// copy a value containing a lock. Composite literals and new allocations
// are not copies of live state and are permitted.
func checkCopyStmt(pass *analysis.Pass, ix *directive.Index, n ast.Node) {
	reportCopy := func(pos token.Pos, what string, t types.Type) {
		if name, has := containsLock(t); has {
			ix.Report(pass, analysis.Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("%s copies a value containing %s; use a pointer", what, name),
			})
		}
	}
	isCopySource := func(e ast.Expr) (types.Type, bool) {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Type == nil {
				return nil, false
			}
			return tv.Type, true
		}
		return nil, false
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return
		}
		for i, r := range s.Rhs {
			// `_ = x` evaluates x without retaining a copy.
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if t, ok := isCopySource(r); ok {
				reportCopy(r.Pos(), "assignment", t)
			}
		}
	case *ast.ValueSpec:
		for _, r := range s.Values {
			if t, ok := isCopySource(r); ok {
				reportCopy(r.Pos(), "declaration", t)
			}
		}
	case *ast.RangeStmt:
		if s.Value == nil {
			return
		}
		// The value variable is in define position; its type lives in
		// Defs, not Types.
		if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
				reportCopy(s.Value.Pos(), "range clause", obj.Type())
				return
			}
		}
		if tv, ok := pass.TypesInfo.Types[s.Value]; ok && tv.Type != nil {
			reportCopy(s.Value.Pos(), "range clause", tv.Type)
		}
	}
}
