// Fixture for the determinism analyzer: clocks, the global RNG, and
// order-sensitive map iteration.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// --- wall-clock reads ---

func clock() int64 {
	t := time.Now() // want `time.Now in deterministic package core`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package core`
}

// clockAllowed reports wall time with a documented exemption.
//
//trajlint:allow determinism -- fixture: elapsed time is reported, never gated on
func clockAllowed() time.Time {
	return time.Now()
}

func clockAllowedInline() time.Time {
	return time.Now() //trajlint:allow determinism -- fixture: reported only
}

// --- global math/rand source ---

func roll() int {
	return rand.Intn(6) // want `global math/rand source \(rand.Intn\) in deterministic package core`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global math/rand source \(rand.Shuffle\)`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// rollOwned threads an owned, seeded source: good.
func rollOwned(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// --- map iteration order ---

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iterated in nondeterministic order into Println`
	}
}

// printSorted iterates sorted keys: good (the key-collecting range is
// followed by a sort of the collected slice).
func printSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation into s in map-iteration order`
	}
	return s
}

// count accumulates an int, which commutes exactly: good.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func collectNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `slice out built from map iteration is never sorted in this block`
		out = append(out, k)
	}
	return out
}

// collectAllowed documents that order is irrelevant.
//
//trajlint:allow determinism -- fixture: consumed as a set, order irrelevant
func collectAllowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// collectLocalSort hands the collected keys to a repo-local sorting
// helper, which counts as the intervening sort: good.
func collectLocalSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(xs []string) { sort.Strings(xs) }

//trajlint:allow determinism // want `malformed trajlint directive`
func malformedDirective() {}
