// Fixture proving the determinism contract extends to the sharded miner:
// merge-order bugs here are exactly the kind the analyzer exists to catch,
// because the merged top-k must be bit-identical however shards interleave.
package shard

import (
	"sort"
	"time"
)

// mergeTimed reads the wall clock to stamp a merge: forbidden, the engine
// threads an obs.Timer instead.
func mergeTimed() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package shard`
}

// candidateUnion collects merge candidates straight out of per-shard memo
// maps without sorting: the union's order — and with it the merged top-k's
// tie-breaks — would vary run to run.
func candidateUnion(memos []map[string]float64) []string {
	var keys []string
	for _, memo := range memos {
		for k := range memo { // want `slice keys built from map iteration is never sorted in this block`
			keys = append(keys, k)
		}
	}
	return keys
}

// candidateUnionSorted sorts each memo's keys in the same block that
// collects them, before folding them into the union: good. (The sort must
// sit in the block of the map range itself — a sort after the outer loop
// is outside the analyzer's block-local proof.)
func candidateUnionSorted(memos []map[string]float64) []string {
	var keys []string
	seen := map[string]bool{}
	for _, memo := range memos {
		ks := make([]string, 0, len(memo))
		for k := range memo {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// sumBounds accumulates per-shard float bounds in map order: float
// addition does not commute bit-exactly, so the merged NM would wobble.
func sumBounds(memo map[string]float64) float64 {
	var total float64
	for _, nm := range memo {
		total += nm // want `floating-point accumulation into total in map-iteration order`
	}
	return total
}

// sumBoundsSorted walks the shards in fixed index order: good.
func sumBoundsSorted(memo map[string]float64, keys []string) float64 {
	var total float64
	for _, k := range keys {
		total += memo[k]
	}
	return total
}
