// Fixture proving determinism only applies inside the configured
// packages: CLI-layer code may read the clock freely.
package outside

import "time"

func clock() time.Time { return time.Now() }
