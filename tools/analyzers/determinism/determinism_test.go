package determinism_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/determinism"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestDeterminism(t *testing.T) {
	checktest.Run(t, determinism.Analyzer,
		filepath.Join("testdata", "src", "core"), "trajpattern/internal/core")
}

func TestDeterminismShardPackage(t *testing.T) {
	checktest.Run(t, determinism.Analyzer,
		filepath.Join("testdata", "src", "shard"), "trajpattern/internal/core/shard")
}

func TestDeterminismOutsideScope(t *testing.T) {
	checktest.Run(t, determinism.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/cli")
}
