// Package determinism enforces the reproducibility contract of the
// deterministic packages (internal/core, internal/core/shard,
// internal/stat, internal/exp, internal/report): for a fixed seed and
// scale, a run's observable outputs
// — mined patterns, work counters, reports, serialized results — must be
// bit-identical across runs, because the CI bench gate compares them
// against a committed baseline.
//
// It reports three classes of violation:
//
//  1. Wall-clock reads: time.Now, time.Since, time.Until. Wall time is
//     inherently nondeterministic; where it is genuinely wanted (reporting
//     elapsed time, never gating on it) annotate the call site.
//  2. The global math/rand source: package-level functions such as
//     rand.Intn or rand.Shuffle (math/rand and math/rand/v2) draw from a
//     process-global, seed-shared source. Deterministic code must thread
//     an owned *rand.Rand (or the repo's stat.RNG) instead. rand.New and
//     rand.NewSource are allowed — they construct owned sources.
//  3. Map iteration feeding order-sensitive work: a `for ... range m` over
//     a map whose body (a) prints, writes, encodes or marshals, (b)
//     accumulates into a floating-point variable declared outside the
//     loop (float addition does not commute bit-exactly), or (c) appends
//     to a slice declared outside the loop that is not subsequently
//     sorted in the same block. Collect keys, sort them, and iterate the
//     sorted keys instead.
//
// Suppress intentional uses with `//trajlint:allow determinism -- reason`.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check deterministic packages for wall-clock reads, the global math/rand source, and order-sensitive map iteration

The bench gate compares work counters bit-for-bit against a committed
baseline, so code in the deterministic packages must not observe the
clock, the global RNG, or Go's randomized map iteration order.`

const name = "determinism"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/core,trajpattern/internal/core/shard,trajpattern/internal/stat,trajpattern/internal/exp,trajpattern/internal/report,trajpattern/internal/ingest",
		"comma-separated package paths (or /-suffixes) held to the determinism contract")
}

// clockFuncs are the forbidden wall-clock reads in package time.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randOwnedConstructors are the math/rand package-level functions that are
// allowed because they build owned sources rather than drawing from the
// global one.
var randOwnedConstructors = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if directive.InTestFile(pass, call.Pos()) {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if pkgLevel(fn) {
			switch fn.Pkg().Path() {
			case "time":
				if clockFuncs[fn.Name()] {
					ix.Report(pass, analysis.Diagnostic{
						Pos: call.Pos(),
						Message: fmt.Sprintf(
							"time.%s in deterministic package %s: wall-clock reads break run-to-run reproducibility",
							fn.Name(), pass.Pkg.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				if !randOwnedConstructors[fn.Name()] {
					ix.Report(pass, analysis.Diagnostic{
						Pos: call.Pos(),
						Message: fmt.Sprintf(
							"global math/rand source (rand.%s) in deterministic package %s: thread an owned, seeded source instead",
							fn.Name(), pass.Pkg.Name()),
					})
				}
			}
		}
	})

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		if directive.InTestFile(pass, rng.Pos()) {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, ix, rng, stack)
		return true
	})
	return nil, nil
}

// calleeFunc resolves the called function, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgLevel reports whether fn is a package-level function (not a method).
func pkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// sinkNames are call names that emit output or serialize inside a loop
// body; reaching one in map-iteration order makes the output
// nondeterministic.
var sinkNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Marshal": true, "MarshalIndent": true,
}

// sortNames are call names accepted as an "intervening sort" of a slice
// built from a map range; isSortCall additionally accepts any callee whose
// name contains "sort" (sortEntries, sortPatterns, ...), so repo-local
// sorting helpers count.
var sortNames = map[string]bool{
	"Sort": true, "Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
}

func isSortCall(name string) bool {
	return sortNames[name] || strings.Contains(strings.ToLower(name), "sort")
}

func checkMapRange(pass *analysis.Pass, ix *directive.Index, rng *ast.RangeStmt, stack []ast.Node) {
	report := func(pos token.Pos, format string, args ...any) {
		// Anchor suppression lookups at the range statement so one
		// directive above the loop covers everything in it.
		if ix.Allowed(pass, rng.Pos()) {
			return
		}
		ix.Report(pass, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	var appended []*types.Var // outer slices appended to in the body
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			name := callName(e)
			if sinkNames[name] {
				report(e.Pos(),
					"map iterated in nondeterministic order into %s; collect and sort the keys first",
					name)
				return true
			}
			if name == "append" {
				if v := outerVarTarget(pass, e, rng); v != nil {
					appended = append(appended, v)
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN || e.Tok == token.SUB_ASSIGN ||
				e.Tok == token.MUL_ASSIGN || e.Tok == token.QUO_ASSIGN {
				for _, lhs := range e.Lhs {
					if v := outerFloatVar(pass, lhs, rng); v != nil {
						report(e.Pos(),
							"floating-point accumulation into %s in map-iteration order is not bit-deterministic; iterate sorted keys",
							v.Name())
					}
				}
			}
		}
		return true
	})

	if len(appended) > 0 && !sortedAfter(pass, rng, stack, appended) {
		report(rng.Pos(),
			"slice %s built from map iteration is never sorted in this block; its order varies run to run",
			appended[0].Name())
	}
}

// callName returns the bare name of the called function or builtin.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// outerVarTarget returns the variable v in `v = append(v, ...)` when v is
// declared outside the range statement.
func outerVarTarget(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) *types.Var {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pos() == token.NoPos {
		return nil
	}
	if rng.Pos() <= v.Pos() && v.Pos() < rng.End() {
		return nil // declared inside the loop
	}
	return v
}

// outerFloatVar returns the variable behind lhs when it is float-typed and
// declared outside the range statement.
func outerFloatVar(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	basic, ok := v.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return nil
	}
	if rng.Pos() <= v.Pos() && v.Pos() < rng.End() {
		return nil
	}
	return v
}

// sortedAfter reports whether, in the innermost block containing rng, some
// statement after rng calls a sort function mentioning one of the appended
// variables.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, vars []*types.Var) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	isTarget := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					for _, t := range vars {
						if v == t {
							found = true
						}
					}
				}
			}
			return !found
		})
		return found
	}
	for _, stmt := range block.List {
		if stmt.Pos() <= rng.End() {
			continue
		}
		sorted := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(callName(call)) {
				return true
			}
			for _, arg := range call.Args {
				if isTarget(arg) {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}
