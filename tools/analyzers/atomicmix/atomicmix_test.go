package atomicmix_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/atomicmix"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestAtomicMix(t *testing.T) {
	checktest.Run(t, atomicmix.Analyzer,
		filepath.Join("testdata", "src", "obs"), "trajpattern/internal/obs")
}

func TestAtomicMixOutsideScope(t *testing.T) {
	checktest.Run(t, atomicmix.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/report")
}
