// Package atomicmix enforces the single-discipline rule for atomic state:
// a struct field that is ever touched through sync/atomic — either a typed
// atomic (atomic.Int64, atomic.Uint64, ...) or a plain integer passed by
// address to the sync/atomic functions — must never be read or written
// plainly. Mixing the two produces a data race the race detector only
// catches on schedules the tests happen to exercise; this pass proves the
// property on every path.
//
// Two rules, applied package-locally in the configured packages:
//
//  1. Legacy atomics: when &x.f is passed to a sync/atomic function
//     (atomic.AddInt64(&x.f, 1)), every other access to that field must
//     also go through sync/atomic. Plain reads (v := x.f) and writes
//     (x.f = 0) are reported, except inside init functions and composite
//     literals — the package's init path, where the value is not yet
//     shared.
//
//  2. Typed atomics: a field (or slice/array element) of type atomic.T
//     may only be used as a method-call receiver (x.f.Load()) or have its
//     address taken. Copying it by value — assignment, a range that copies
//     elements, passing it as an argument — smuggles the current value out
//     from under the atomic protocol and is reported. (go vet's copylocks
//     catches some of these; this pass also catches reads that copylocks
//     permits, such as ranging over a []atomic.Int64 by value.)
//
// This is the static guard on the internal/obs Histogram/Counter/Gauge
// internals: their contract is "every touch is one atomic op", and a
// plainly-read counts slot is a torn snapshot waiting for a weak-memory
// machine. Suppress intentional exceptions with
// `//trajlint:allow atomicmix -- reason`.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that atomic fields are never read or written plainly

A field touched through sync/atomic (typed atomic or address passed to the
atomic functions) must be accessed through sync/atomic everywhere outside
the package's init path; a plain access races every atomic one.`

const name = "atomicmix"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/obs,trajpattern/internal/obs/slogx,trajpattern/internal/trace,"+
			"trajpattern/internal/serve,trajpattern/internal/serve/guard,trajpattern/internal/serve/chaos,"+
			"trajpattern/internal/core/shard,trajpattern/internal/core/shard/supervisor,trajpattern/internal/core/shard/supervisor/chaos,"+
			"trajpattern/internal/retry,trajpattern/internal/cli,trajpattern/internal/ingest,trajpattern/internal/ingest/chaos",
		"comma-separated package paths (or /-suffixes) held to the atomic-access discipline")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	legacy := legacyAtomicFields(pass, ins)
	checkAccesses(pass, ix, ins, legacy)
	return nil, nil
}

// legacyAtomicFields collects every struct field whose address is passed
// to a sync/atomic function anywhere in the package.
func legacyAtomicFields(pass *analysis.Pass, ins *inspector.Inspector) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isAtomicCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if f := fieldOf(pass, un.X); f != nil {
				fields[f] = true
			}
		}
	})
	return fields
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (AddInt64, LoadUint32, CompareAndSwapPointer, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldOf returns the struct field object a selector (possibly through an
// index expression) resolves to, or nil.
func fieldOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X) // x.f[i]: the field is x.f
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// atomicTypeName reports whether t is one of sync/atomic's typed atomics,
// returning its name ("Int64", ...).
func atomicTypeName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return obj.Name(), true
	}
	return "", false
}

// elemAtomic reports whether t is a slice or array of a typed atomic.
func elemAtomic(t types.Type) (string, bool) {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return atomicTypeName(u.Elem())
	case *types.Array:
		return atomicTypeName(u.Elem())
	}
	return "", false
}

// checkAccesses walks every selector expression with a parent stack and
// reports plain accesses to atomic state.
func checkAccesses(pass *analysis.Pass, ix *directive.Index, ins *inspector.Inspector, legacy map[*types.Var]bool) {
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			checkRangeCopy(pass, ix, rs)
			return true
		}
		sel := n.(*ast.SelectorExpr)
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		if inInitPath(stack) {
			return true
		}
		if legacy[f] {
			if !viaAtomic(pass, stack) {
				ix.Report(pass, analysis.Diagnostic{
					Pos: sel.Pos(),
					Message: fmt.Sprintf(
						"field %s is accessed with sync/atomic elsewhere but read/written plainly here; every access to an atomic field must go through sync/atomic",
						f.Name()),
				})
			}
			return true
		}
		if tn, ok := atomicTypeName(f.Type()); ok {
			if copied, how := valueCopied(pass, sel, stack); copied {
				ix.Report(pass, analysis.Diagnostic{
					Pos: sel.Pos(),
					Message: fmt.Sprintf(
						"atomic.%s field %s is %s; typed atomics may only be used as method-call receivers or by address — a value copy escapes the atomic protocol",
						tn, f.Name(), how),
				})
			}
		}
		return true
	})
}

// inInitPath reports whether the innermost enclosing function is an init
// function, or the selector sits inside a composite literal (construction,
// before the value is shared).
func inInitPath(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.CompositeLit:
			return true
		case *ast.FuncDecl:
			return d.Recv == nil && d.Name.Name == "init"
		}
	}
	return false
}

// viaAtomic reports whether the selector is accessed through sync/atomic:
// its address (possibly via an index expression) is taken and passed
// directly to a sync/atomic call. A plain read that merely appears as
// another argument of an atomic call does not qualify.
func viaAtomic(pass *analysis.Pass, stack []ast.Node) bool {
	i := len(stack) - 2
	for ; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.IndexExpr, *ast.ParenExpr:
			continue
		}
		break
	}
	if i < 1 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	for i--; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicCall(pass, call)
}

// valueCopied classifies the use of an atomic-typed selector at the top of
// stack; it returns how the value escapes ("assigned", "copied", ...) when
// the use is neither a method call via the field nor an address-of.
func valueCopied(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) (bool, string) {
	var parent ast.Node
	if len(stack) >= 2 {
		parent = stack[len(stack)-2]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.Load(): the field is the receiver of a further selection —
		// method call or (for atomic.Value etc.) nothing else exists.
		return false, ""
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return false, ""
		}
	case *ast.IndexExpr:
		// x.f[i] where f is []atomic.T: the element must itself be used
		// via method or address; that use is classified one level up when
		// the IndexExpr's parent is inspected — the slice base itself is
		// not a copy.
		if p.X == sel {
			if copied, how := indexUseCopied(stack); copied {
				return true, how
			}
			return false, ""
		}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if ast.Unparen(l) == ast.Node(sel) {
				return true, "assigned plainly"
			}
		}
		return true, "copied by value in an assignment"
	case *ast.ValueSpec:
		return true, "copied by value in a declaration"
	case *ast.CallExpr:
		for _, a := range p.Args {
			if ast.Unparen(a) == ast.Node(sel) {
				return true, "passed by value to a call"
			}
		}
	case *ast.ReturnStmt:
		return true, "returned by value"
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true, "copied into a composite literal"
	case *ast.RangeStmt:
		return false, "" // handled by checkRangeCopy (the base is not copied)
	}
	return false, ""
}

// indexUseCopied classifies the use of x.f[i] (an atomic slice element):
// stack ends [..., parentOfIndex?, IndexExpr, SelectorExpr]; the relevant
// parent is two frames up from the selector.
func indexUseCopied(stack []ast.Node) (bool, string) {
	if len(stack) < 3 {
		return false, ""
	}
	switch p := stack[len(stack)-3].(type) {
	case *ast.SelectorExpr:
		return false, "" // x.f[i].Add(1)
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return false, ""
		}
	}
	return true, "read or written plainly through an index expression"
}

// checkRangeCopy reports ranging over a slice/array of typed atomics with
// a value variable: each iteration copies an element out from under the
// protocol. Ranging by index alone is fine.
func checkRangeCopy(pass *analysis.Pass, ix *directive.Index, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if tn, ok := elemAtomic(tv.Type); ok {
		ix.Report(pass, analysis.Diagnostic{
			Pos: rs.Value.Pos(),
			Message: fmt.Sprintf(
				"range copies atomic.%s elements by value; iterate by index and use the element's methods instead",
				tn),
		})
	}
}
