// Fixture for the atomicmix analyzer: a miniature of internal/obs's
// atomic counter and histogram internals.
package obs

import "sync/atomic"

// Counter mixes legacy sync/atomic calls with plain accesses.
type Counter struct {
	n     int64
	label string
}

// Inc touches n through sync/atomic: from here on, n is an atomic field.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Value reads n atomically: good.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.n) }

// Reset writes the atomic field plainly: flagged.
func (c *Counter) Reset() {
	c.n = 0 // want `field n is accessed with sync/atomic elsewhere but read/written plainly here`
}

// Peek reads the atomic field plainly: flagged.
func (c *Counter) Peek() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere but read/written plainly here`
}

// Label touches only the non-atomic field: good.
func (c *Counter) Label() string { return c.label }

// NewCounter constructs through a composite literal (init path): good.
func NewCounter() *Counter { return &Counter{n: 0} }

func init() {
	shared.n = 7 // init functions are the package's init path: good
}

var shared Counter

// Drain reads plainly under a documented waiver: suppressed.
func (c *Counter) Drain() int64 {
	v := c.n //trajlint:allow atomicmix -- fixture: single-writer teardown path, no concurrent updaters left
	return v
}

// Stale carries a reason-less waiver: the directive itself is flagged and
// the plain access still reported.
func (c *Counter) Stale() int64 {
	//trajlint:allow atomicmix // want `malformed trajlint directive`
	return c.n // want `field n is accessed with sync/atomic elsewhere but read/written plainly here`
}

// Gauge uses a typed atomic.
type Gauge struct {
	v atomic.Int64
}

// Set uses the typed atomic's methods: good.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Snapshot copies the typed atomic by value: both the plain write and the
// value read are flagged.
func (g *Gauge) Snapshot() Gauge {
	cp := Gauge{}
	cp.v = g.v // want `atomic.Int64 field v is assigned plainly` `atomic.Int64 field v is copied by value in an assignment`
	return cp
}

// Hist holds a slice of typed atomics, like the obs Histogram's buckets.
type Hist struct {
	counts []atomic.Int64
}

// Observe indexes and uses methods: good.
func (h *Hist) Observe(i int) { h.counts[i].Add(1) }

// Sum ranges by index and loads: good.
func (h *Hist) Sum() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// BadSum ranges by value, copying each element out from under the
// protocol: flagged.
func (h *Hist) BadSum() int64 {
	var n int64
	for _, c := range h.counts { // want `range copies atomic.Int64 elements by value`
		n += c.Load()
	}
	return n
}
