// Fixture: the same shapes in a package outside atomicmix's scope produce
// no diagnostics.
package outside

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) reset() { c.n = 0 } // out of scope: not flagged
