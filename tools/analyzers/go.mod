// Module trajpattern/tools/analyzers holds the trajlint static-analysis
// suite. It is a separate module so the main trajpattern module stays
// stdlib-pure; golang.org/x/tools is vendored (from the Go distribution's
// cmd/vendor tree) so the tools build is hermetic and reproducible.
module trajpattern/tools/analyzers

go 1.22

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
