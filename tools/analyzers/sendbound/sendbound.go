// Package sendbound proves that channel sends in the configured
// concurrent packages cannot block forever — the static counterpart of
// the stuck-producer hangs the chaos tests hunt dynamically. An
// unguarded send on an unbuffered (or full) channel parks its goroutine
// until a receiver shows up; when the receiver has been drained away,
// that producer survives shutdown and the drain never converges.
//
// A send statement `ch <- v` is accepted when any of the following holds:
//
//   - Escapable select: the send is a case of a select that also has a
//     default clause or at least one receive case (cancellation — a
//     `<-ctx.Done()` case — being the canonical form), so the goroutine
//     has a way out when no receiver arrives.
//
//   - Buffered by construction: ch resolves to a local variable whose
//     defining `make(chan T, n)` in the same file has a non-zero
//     capacity, or to a struct field every `make` assigned to it in the
//     package is buffered (composite literals and field assignments both
//     count). The send can park only if the buffer is full — a capacity
//     bug, not a rendezvous-with-nobody bug, and one the queue-depth
//     telemetry makes visible.
//
// Sends on parameters, interface-wrapped channels, or channels made
// unbuffered are reported. Suppress a send that is provably paired with a
// dedicated receiver by design with
// `//trajlint:allow sendbound -- reason`.
package sendbound

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that channel sends are select-guarded or provably buffered

A bare send on an unbuffered channel parks the goroutine until a receiver
arrives; when the receiver is gone (a drained server, a cancelled
request) the producer hangs forever. Sends must sit in a select with an
escape (default or a receive case such as <-ctx.Done()) or target a
channel made with a non-zero buffer.`

const name = "sendbound"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/core/shard,trajpattern/internal/core/shard/supervisor,trajpattern/internal/core/shard/supervisor/chaos,trajpattern/internal/retry,"+
			"trajpattern/internal/serve,trajpattern/internal/serve/guard,"+
			"trajpattern/internal/serve/chaos,trajpattern/internal/cli,trajpattern/internal/trace,"+
			"trajpattern/internal/obs,trajpattern/internal/obs/slogx,trajpattern/internal/ingest,trajpattern/internal/ingest/chaos",
		"comma-separated package paths (or /-suffixes) whose channel sends must be bounded")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	buffered := bufferedFields(pass, ins)

	ins.WithStack([]ast.Node{(*ast.SendStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		send := n.(*ast.SendStmt)
		if inEscapableSelect(stack) {
			return true
		}
		if isBuffered(pass, send.Chan, buffered) {
			return true
		}
		ix.Report(pass, analysis.Diagnostic{
			Pos: send.Pos(),
			Message: "unbounded channel send: not select-guarded (no default or receive case such as <-ctx.Done()) " +
				"and the channel is not provably buffered; a vanished receiver parks this goroutine forever",
		})
		return true
	})
	return nil, nil
}

// inEscapableSelect reports whether the send is the communication of a
// select case whose select has an escape: a default clause or a receive
// case. A send inside a case *body* is not guarded — the select has
// already fired by the time it runs.
func inEscapableSelect(stack []ast.Node) bool {
	send := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.FuncLit:
			return false // crossed into the enclosing function: no select guards this send
		case *ast.CommClause:
			if x.Comm != send {
				return false
			}
			sel, ok := stackSelect(stack, i)
			return ok && selectHasEscape(sel)
		}
	}
	return false
}

// stackSelect returns the SelectStmt enclosing the CommClause at stack[i].
func stackSelect(stack []ast.Node, i int) (*ast.SelectStmt, bool) {
	for j := i - 1; j >= 0; j-- {
		if s, ok := stack[j].(*ast.SelectStmt); ok {
			return s, true
		}
	}
	return nil, false
}

// selectHasEscape reports whether sel has a default clause or a receive
// case.
func selectHasEscape(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt, *ast.AssignStmt:
			_ = comm
			return true // a receive case (<-c, v := <-c)
		}
	}
	return false
}

// bufferedFields maps "structTypeName.fieldName" to whether every make
// assigned to that field in this package is buffered. A field with any
// unbuffered (or absent) make, or never made locally, is absent or false.
func bufferedFields(pass *analysis.Pass, ins *inspector.Inspector) map[string]bool {
	out := map[string]bool{}
	note := func(field *types.Var, buffered bool) {
		if field == nil {
			return
		}
		key := fieldKey(field)
		if prev, seen := out[key]; seen {
			out[key] = prev && buffered
		} else {
			out[key] = buffered
		}
	}
	ins.Preorder([]ast.Node{(*ast.CompositeLit)(nil), (*ast.AssignStmt)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[x]
			if !ok || tv.Type == nil {
				return
			}
			st, ok := deref(tv.Type).Underlying().(*types.Struct)
			if !ok {
				return
			}
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyID, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if !isChanExpr(pass, kv.Value) {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i).Name() == keyID.Name {
						note(st.Field(i), isBufferedMake(pass, kv.Value))
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return
			}
			for i, l := range x.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok || !isChanExpr(pass, x.Rhs[i]) {
					continue
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					continue
				}
				if f, ok := s.Obj().(*types.Var); ok {
					note(f, isBufferedMake(pass, x.Rhs[i]))
				}
			}
		}
	})
	return out
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func fieldKey(f *types.Var) string {
	owner := ""
	if f.Pkg() != nil {
		owner = f.Pkg().Path()
	}
	return owner + "#" + f.Name() + "#" + f.Type().String()
}

func isChanExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isBufferedMake reports whether e is a make(chan T, n) with a non-zero
// capacity: a constant > 0, or a non-constant expression (a variable
// capacity such as make(chan error, clients) — treated as buffered; a
// deliberately zero variable capacity is an admitted blind spot).
func isBufferedMake(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
		return tv.Value.String() != "0"
	}
	return true // non-constant capacity: assume the construction sized it
}

// isBuffered reports whether the send target is provably buffered: a
// local identifier defined by a buffered make in this file, or a struct
// field whose every package-local make is buffered.
func isBuffered(pass *analysis.Pass, ch ast.Expr, fields map[string]bool) bool {
	switch x := ast.Unparen(ch).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = pass.TypesInfo.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return localMakeBuffered(pass, v)
	case *ast.SelectorExpr:
		s := pass.TypesInfo.Selections[x]
		if s == nil || s.Kind() != types.FieldVal {
			return false
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return false
		}
		return fields[fieldKey(f)]
	}
	return false
}

// localMakeBuffered scans the file defining v for its defining
// assignment/declaration and reports whether it is a buffered make. All
// makes assigned to v must be buffered.
func localMakeBuffered(pass *analysis.Pass, v *types.Var) bool {
	var made, allBuffered bool
	allBuffered = true
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != pass.Fset.File(v.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, l := range x.Lhs {
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					if pass.TypesInfo.Defs[id] != v && pass.TypesInfo.Uses[id] != v {
						continue
					}
					if isChanExpr(pass, x.Rhs[i]) {
						made = true
						allBuffered = allBuffered && isBufferedMake(pass, x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, nm := range x.Names {
					if pass.TypesInfo.Defs[nm] != v || i >= len(x.Values) {
						continue
					}
					if isChanExpr(pass, x.Values[i]) {
						made = true
						allBuffered = allBuffered && isBufferedMake(pass, x.Values[i])
					}
				}
			}
			return true
		})
	}
	return made && allBuffered
}
