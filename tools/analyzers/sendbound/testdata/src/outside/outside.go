// Fixture: unguarded sends outside sendbound's scope produce no
// diagnostics.
package outside

func push(out chan int) {
	out <- 1 // out of scope: not flagged
}
