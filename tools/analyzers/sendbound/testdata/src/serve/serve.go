// Fixture for the sendbound analyzer: channel-send shapes from the
// serving runtime.
package serve

import "context"

// bufferedLocal sends on a channel made with capacity 1: good (the
// app.Run serveErr shape).
func bufferedLocal(serve func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	return <-errc
}

// bufferedVarCap sends on a channel sized by a variable: accepted (the
// construction sized it; zero is an admitted blind spot).
func bufferedVarCap(n int) chan int {
	out := make(chan int, n)
	out <- 1
	return out
}

// ctxGuarded sends under a select with a cancellation escape: good.
func ctxGuarded(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	case <-ctx.Done():
	}
}

// defaultGuarded drops when no receiver is ready: good.
func defaultGuarded(out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// bareUnbuffered parks forever when the receiver is gone: flagged.
func bareUnbuffered() {
	c := make(chan int)
	c <- 1 // want `unbounded channel send`
}

// paramSend sends on a channel of unknown construction: flagged.
func paramSend(out chan int) {
	out <- 1 // want `unbounded channel send`
}

// caseBodySend sits in a select case *body*, after the select fired: the
// select guards nothing and the channel is unknown: flagged.
func caseBodySend(ctx context.Context, out chan int) {
	select {
	case <-ctx.Done():
		out <- 1 // want `unbounded channel send`
	}
}

// sendOnlySelect has no escape case: flagged.
func sendOnlySelect(a, b chan int) {
	select {
	case a <- 1: // want `unbounded channel send`
	case b <- 2: // want `unbounded channel send`
	}
}

// waiter mirrors guard.Admission's queue entry: the field is made
// buffered at every construction site, so sends on it are good.
type waiter struct {
	ready chan error
}

func newWaiter() *waiter {
	return &waiter{ready: make(chan error, 1)}
}

func grant(w *waiter) {
	w.ready <- nil
}

// leaky mirrors the same shape with an unbuffered construction: every
// send through the field is flagged.
type leaky struct {
	ch chan int
}

func newLeaky() *leaky {
	return &leaky{ch: make(chan int)}
}

func pushLeaky(l *leaky) {
	l.ch <- 1 // want `unbounded channel send`
}

// waived documents a send whose receiver is structurally guaranteed.
func waived(out chan int) {
	out <- 1 //trajlint:allow sendbound -- fixture: receiver spawned unconditionally two lines up
}

// staleWaiver carries a reason-less waiver: the directive is flagged and
// the send still reported.
func staleWaiver(out chan int) {
	//trajlint:allow sendbound // want `malformed trajlint directive`
	out <- 1 // want `unbounded channel send`
}
