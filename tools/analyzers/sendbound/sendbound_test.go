package sendbound_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/internal/checktest"
	"trajpattern/tools/analyzers/sendbound"
)

func TestSendBound(t *testing.T) {
	checktest.Run(t, sendbound.Analyzer,
		filepath.Join("testdata", "src", "serve"), "trajpattern/internal/serve")
}

func TestSendBoundOutsideScope(t *testing.T) {
	checktest.Run(t, sendbound.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/report")
}
