// Package checktest is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest, which is not part of the
// x/tools subset vendored from the Go distribution. It loads one package of
// fixture files from a testdata directory, typechecks it against the
// standard library with the source importer (no compiled export data or
// network needed), runs an analyzer and its dependency graph, and compares
// the diagnostics against analysistest-style "// want" expectations:
//
//	rand.Intn(7) // want `global math/rand`
//
// Each backquoted or double-quoted string after "// want" is a regexp that
// must match, in order, one diagnostic reported on that line. Lines without
// a want comment must produce no diagnostics.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), assigns it the import path pkgPath, and checks a's
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("checktest: no fixtures in %s (%v)", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("checktest: parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("checktest: typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var runAnalyzer func(a *analysis.Analyzer, report func(analysis.Diagnostic))
	runAnalyzer = func(a *analysis.Analyzer, report func(analysis.Diagnostic)) {
		for _, dep := range a.Requires {
			if _, done := results[dep]; !done {
				// Dependency diagnostics are not part of the test.
				runAnalyzer(dep, func(analysis.Diagnostic) {})
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report:     report,
			ReadFile:   os.ReadFile,
			// No facts cross package boundaries in this harness; analyzers
			// that query facts (ctrlflow's noReturn) see an empty universe.
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("checktest: %s: %v", a.Name, err)
		}
		results[a] = res
	}
	runAnalyzer(a, func(d analysis.Diagnostic) { diags = append(diags, d) })

	compare(t, fset, files, diags)
}

// compare matches reported diagnostics against // want comments.
func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// "// want" may open the comment or follow other text (as in
				// a malformed-directive fixture that both triggers and
				// expects a diagnostic).
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range splitPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, res := range wants {
		msgs := got[k]
		if len(msgs) != len(res) {
			t.Errorf("%s:%d: got %d diagnostics %q, want %d", k.file, k.line, len(msgs), msgs, len(res))
			continue
		}
		for i, re := range res {
			if !re.MatchString(msgs[i]) {
				t.Errorf("%s:%d: diagnostic %q does not match %q", k.file, k.line, msgs[i], re)
			}
		}
	}
	for k, msgs := range got {
		if _, expected := wants[k]; !expected {
			t.Errorf("%s:%d: unexpected diagnostics %q", k.file, k.line, msgs)
		}
	}
}

// splitPatterns parses the sequence of quoted/backquoted strings after
// "// want".
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var pat, rest string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				out = append(out, s[1:])
				return out
			}
			pat, rest = s[1:1+end], s[2+end:]
		case '"':
			parsed, err := strconv.QuotedPrefix(s)
			if err != nil {
				out = append(out, s)
				return out
			}
			pat, _ = strconv.Unquote(parsed)
			rest = s[len(parsed):]
		default:
			panic(fmt.Sprintf("checktest: malformed want list at %q", s))
		}
		out = append(out, pat)
		s = strings.TrimSpace(rest)
	}
	return out
}
