package directive

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		text   string
		target string
		ok     bool
	}{
		{"//trajlint:allow determinism -- timing is reported only", "determinism", true},
		{"//trajlint:allow floatcmp -- sentinel", "floatcmp", true},
		{"//trajlint:allow determinism", "", true},           // no reason
		{"//trajlint:allow -- reason but no name", "", true}, // no analyzer
		{"//trajlint:allowed nothing", "", false},            // not a directive
		{"// ordinary comment", "", false},
		{"//trajlint:allow", "", true},
	}
	for _, c := range cases {
		target, ok := parse(c.text)
		if target != c.target || ok != c.ok {
			t.Errorf("parse(%q) = (%q, %v), want (%q, %v)", c.text, target, ok, c.target, c.ok)
		}
	}
}

func TestMatchPkg(t *testing.T) {
	cases := []struct {
		path, patterns string
		want           bool
	}{
		{"trajpattern/internal/core", "trajpattern/internal/core,trajpattern/internal/stat", true},
		{"trajpattern/internal/cli", "trajpattern/internal/core,trajpattern/internal/stat", false},
		{"trajpattern/internal/core", "internal/core", true}, // suffix form
		{"myinternal/core", "internal/core", false},          // must be a /-separated suffix
		{"internal/core", "internal/core", true},
		{"anything", "", false},
	}
	for _, c := range cases {
		if got := MatchPkg(c.path, c.patterns); got != c.want {
			t.Errorf("MatchPkg(%q, %q) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}
