// Package directive implements the trajlint suppression syntax shared by
// every analyzer in the suite:
//
//	//trajlint:allow <analyzer> -- <reason>
//
// A directive suppresses diagnostics from the named analyzer on the line
// it occupies and on the line that follows it (so it can sit on the
// offending line or immediately above it). When written as the doc comment
// of a function declaration it suppresses the whole function. The reason
// after " -- " is mandatory: an allow without a reason is itself reported
// by the analyzer it names, so every suppression in the tree documents why
// the invariant does not apply.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment prefix that introduces a trajlint directive.
const Prefix = "//trajlint:allow"

// Index records, for one analysis pass, where a given analyzer's
// diagnostics are suppressed.
type Index struct {
	name  string
	lines map[string]map[int]bool // filename -> suppressed lines
	spans []span                  // whole-declaration suppressions
	bad   []analysis.Diagnostic   // malformed directives naming this analyzer
}

type span struct{ lo, hi token.Pos }

// NewIndex scans every file in the pass for directives naming analyzer
// name and returns the resulting suppression index.
func NewIndex(pass *analysis.Pass, name string) *Index {
	ix := &Index{name: name, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		docs := make(map[*ast.CommentGroup]ast.Node)
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docs[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docs[d.Doc] = d
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				target, ok := parse(c.Text)
				if !ok {
					continue
				}
				switch target {
				case ix.name:
					if decl, isDoc := docs[cg]; isDoc {
						ix.spans = append(ix.spans, span{decl.Pos(), decl.End()})
						continue
					}
					pos := pass.Fset.Position(c.Pos())
					m := ix.lines[pos.Filename]
					if m == nil {
						m = make(map[int]bool)
						ix.lines[pos.Filename] = m
					}
					m[pos.Line] = true
					m[pos.Line+1] = true
				case "":
					// Malformed: no analyzer name or no " -- reason". Report it
					// from every analyzer whose name appears in the raw text, or
					// from all if none does, so at least one analyzer flags it.
					if strings.Contains(c.Text, ix.name) || !namesAnyAnalyzer(c.Text) {
						ix.bad = append(ix.bad, analysis.Diagnostic{
							Pos: c.Pos(),
							Message: "malformed trajlint directive: want " +
								"`//trajlint:allow <analyzer> -- <reason>`",
						})
					}
				}
			}
		}
	}
	return ix
}

// knownAnalyzers lets a malformed directive that still names an analyzer be
// reported exactly once (by that analyzer) instead of by all nine. Keep in
// sync with cmd/trajlint and tools/ci/check-waivers.sh.
var knownAnalyzers = []string{
	"nilguard", "determinism", "floatcmp", "closepair", "ctxfirst",
	"atomicmix", "lockdiscipline", "goleak", "sendbound",
}

func namesAnyAnalyzer(text string) bool {
	for _, a := range knownAnalyzers {
		if strings.Contains(text, a) {
			return true
		}
	}
	return false
}

// parse returns the analyzer a well-formed directive names, or ok=false if
// the comment is not a trajlint directive at all. A comment that starts
// with Prefix but lacks a name or a " -- reason" yields ("", true).
func parse(text string) (target string, ok bool) {
	if !strings.HasPrefix(text, Prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, Prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //trajlint:allowed — not ours
	}
	name, reason, found := strings.Cut(rest, " -- ")
	name = strings.TrimSpace(name)
	if !found || name == "" || strings.TrimSpace(reason) == "" {
		return "", true
	}
	return name, true
}

// Allowed reports whether a diagnostic at pos is suppressed.
func (ix *Index) Allowed(pass *analysis.Pass, pos token.Pos) bool {
	for _, s := range ix.spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	p := pass.Fset.Position(pos)
	return ix.lines[p.Filename][p.Line]
}

// Report emits diag unless it is suppressed; it also flushes any malformed
// directives found during indexing the first time it is called.
func (ix *Index) Report(pass *analysis.Pass, diag analysis.Diagnostic) {
	ix.FlushBad(pass)
	if ix.Allowed(pass, diag.Pos) {
		return
	}
	pass.Report(diag)
}

// FlushBad reports malformed directives (at most once per index).
func (ix *Index) FlushBad(pass *analysis.Pass) {
	for _, d := range ix.bad {
		pass.Report(d)
	}
	ix.bad = nil
}

// MatchPkg reports whether the package path matches any pattern in the
// comma-separated list: an exact match, or a "/"-separated suffix (so
// "internal/core" matches "trajpattern/internal/core").
func MatchPkg(pkgPath, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file. The suite skips
// test files: tests legitimately read clocks, seed the global RNG and
// compare floats produced by fixed inputs.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
