// Fixture for the closepair analyzer.
package p

import "os"

// leak never closes f on the success path.
func leak(path string) error {
	f, err := os.Open(path) // want `f opened from os.Open is not closed on the path`
	if err != nil {
		return err
	}
	var buf [8]byte
	f.Read(buf[:])
	return nil
}

// good defers the close right after the error check.
func good(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// goodClosureDefer closes inside a deferred closure.
func goodClosureDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// goodReturnClose closes in the return expression and on the read-error
// path.
func goodReturnClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var buf [8]byte
	if _, err := f.Read(buf[:]); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// leakOnBranch closes on one path but not the early return.
func leakOnBranch(path string, skip bool) error {
	f, err := os.Open(path) // want `f opened from os.Open is not closed on the path`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}

// leakAfterReadErr reuses err for a second call: its error path still
// holds an open file and must close it.
func leakAfterReadErr(path string) error {
	f, err := os.Create(path) // want `f opened from os.Create is not closed on the path`
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("x"))
	if err != nil {
		return err
	}
	return f.Close()
}

// discard throws the handle away.
func discard(path string) {
	_, _ = os.Open(path) // want `result of os.Open discarded`
}

// transfer returns the open file: ownership moves to the caller, not
// tracked here.
func transfer(path string) (*os.File, error) {
	return returnsBoth(os.Open(path))
}

func returnsBoth(f *os.File, err error) (*os.File, error) { return f, err }

// handedOff passes the file to another function: ownership may transfer,
// not tracked.
func handedOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

func consume(f *os.File) error { return f.Close() }

// pinned leaks on purpose, with a documented exemption.
//
//trajlint:allow closepair -- fixture: fd intentionally held for process lifetime
func pinned(path string) {
	f, _ := os.Open(path)
	f.Seek(0, 0)
}

// loopClose opens inside a loop and closes at the bottom of each
// iteration.
func loopClose(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
