package closepair_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/closepair"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestClosepair(t *testing.T) {
	checktest.Run(t, closepair.Analyzer,
		filepath.Join("testdata", "src", "p"), "example.com/p")
}
