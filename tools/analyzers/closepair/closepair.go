// Package closepair checks that every resource acquired from an approved
// "opener" (os.Open, os.Create, os.OpenFile, traj.OpenReader,
// core.NewFileCursor, ...) is released on every control-flow path: the
// generalization of the PR 2 FileCursor fd-leak fix.
//
// For each call to an opener whose result is bound to a local variable v,
// the analyzer walks the function's control-flow graph from the open site.
// A path is satisfied when it reaches a v.Close() call or a defer that
// closes v; a path that reaches a return (or falls off the end of the
// function) without one is reported at the open site. The error-return
// path of a two-result opener (`if err != nil { return ... }`) is exempt —
// there is nothing to close when the open failed.
//
// The analysis is intraprocedural and deliberately conservative about
// escapes: if v is returned, stored, captured by a non-defer closure, or
// passed to another function, ownership may have transferred and the
// variable is not tracked. Suppress a true intentional leak with
// `//trajlint:allow closepair -- reason`.
package closepair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that opened files and cursors are closed on all control-flow paths

Every call to an approved opener must be paired with a Close (or a defer
that closes) reachable on every path out of the function, excluding the
opener's own error-return path.`

const name = "closepair"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

var openerList string

func init() {
	Analyzer.Flags.StringVar(&openerList, "funcs",
		"os.Open,os.Create,os.OpenFile,os.CreateTemp,"+
			"trajpattern/internal/traj.OpenReader,"+
			"trajpattern/internal/core.NewFileCursor",
		"comma-separated pkgpath.Func openers whose results must be closed")
}

// opener is one parsed -funcs entry.
type opener struct{ pkg, name string }

func parseOpeners() []opener {
	var out []opener
	for _, s := range strings.Split(openerList, ",") {
		s = strings.TrimSpace(s)
		i := strings.LastIndexByte(s, '.')
		if i <= 0 || i == len(s)-1 {
			continue
		}
		out = append(out, opener{s[:i], s[i+1:]})
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	openers := parseOpeners()
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || directive.InTestFile(pass, decl.Pos()) {
			return
		}
		g := cfgs.FuncDecl(decl)
		if g == nil {
			return
		}
		checkBody(pass, ix, openers, decl.Body, g)
	})
	return nil, nil
}

// checkBody finds opener calls in body and verifies each is closed on all
// CFG paths. Function literals inside body have their own CFGs and are not
// descended into here (a resource opened in a closure is the closure's).
func checkBody(pass *analysis.Pass, ix *directive.Index, openers []opener, body *ast.BlockStmt, g *cfg.CFG) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		op := matchOpener(pass, call, openers)
		if op == nil {
			return true
		}
		if len(assign.Lhs) == 0 {
			return true
		}
		vID, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok {
			return true // stored straight into a field/index: escapes
		}
		if vID.Name == "_" {
			ix.Report(pass, analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: fmt.Sprintf("result of %s.%s discarded; the opened resource can never be closed", shortPkg(op.pkg), op.name),
			})
			return true
		}
		v := objectOf(pass, vID)
		if v == nil {
			return true
		}
		var errVar *types.Var
		if len(assign.Lhs) == 2 {
			if errID, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
				errVar = objectOf(pass, errID)
			}
		}
		if escapes(pass, body, v, assign) {
			return true
		}
		closes := closeNodes(pass, body, v)
		if leak := leakyPath(pass, g, assign, closes, errVar); leak != token.NoPos {
			ix.Report(pass, analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"%s opened from %s.%s is not closed on the path exiting at line %d; close it on every path (e.g. defer %s.Close())",
					v.Name(), shortPkg(op.pkg), op.name,
					pass.Fset.Position(leak).Line, v.Name()),
			})
		}
		return true
	})
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func objectOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// matchOpener returns the opener entry the call resolves to, or nil.
func matchOpener(pass *analysis.Pass, call *ast.CallExpr, openers []opener) *opener {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil
	}
	path := fn.Pkg().Path()
	for i := range openers {
		o := &openers[i]
		if fn.Name() != o.name {
			continue
		}
		if path == o.pkg || strings.HasSuffix(path, "/"+o.pkg) {
			return o
		}
	}
	return nil
}

// escapes reports whether v is used in a way that may transfer or share
// ownership: returned, reassigned, stored elsewhere, address taken, passed
// to a call, or captured by a closure outside a closing defer.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var, open *ast.AssignStmt) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != v {
			return true
		}
		if usageEscapes(pass, stack, v) {
			escaped = true
		}
		return true
	})
	_ = open
	return escaped
}

// usageEscapes classifies the use of v at the top of stack.
func usageEscapes(pass *analysis.Pass, stack []ast.Node, v *types.Var) bool {
	id := stack[len(stack)-1].(*ast.Ident)
	var parent ast.Node
	if len(stack) >= 2 {
		parent = stack[len(stack)-2]
	}
	// Inside a function literal: only fine when the closure is deferred
	// (a deferred close); any other capture escapes.
	inDefer := false
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			inDefer = true
		}
	}
	inClosure := false
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			inClosure = true
			break
		}
	}
	if inClosure && !inDefer {
		return true
	}

	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// v.M(...) — a method call on v keeps ownership local. v.M as a
		// method value or field read is fine too (fields of a file don't
		// exist; cursors have none exported).
		return false
	case *ast.AssignStmt:
		// v on the LHS of its defining assignment: the open itself. v on
		// any other LHS (reassignment) or on a RHS (aliasing) escapes.
		for _, l := range p.Lhs {
			if ast.Unparen(l) == ast.Node(id) {
				if _, isOpen := isOpenAssign(pass, p, v); isOpen {
					return false
				}
				return true // reassigned
			}
		}
		return true // aliased into another variable
	case *ast.ValueSpec:
		return true
	case *ast.ReturnStmt:
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND // &v escapes
	case *ast.CallExpr:
		// v passed as an argument (not the callee): ownership may transfer.
		for _, arg := range p.Args {
			if ast.Unparen(arg) == ast.Node(id) {
				return true
			}
		}
		return false
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// isOpenAssign reports whether assign is the opener assignment defining v.
func isOpenAssign(pass *analysis.Pass, assign *ast.AssignStmt, v *types.Var) (int, bool) {
	for i, l := range assign.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if pass.TypesInfo.Defs[id] == v || (assign.Tok == token.ASSIGN && pass.TypesInfo.Uses[id] == v) {
				if len(assign.Rhs) == 1 {
					if _, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok {
						return i, true
					}
				}
			}
		}
	}
	return 0, false
}

// closeNodes collects the statements in body that release v: an expression
// statement calling v.Close(), or a defer whose call tree closes v.
func closeNodes(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	for _, stmt := range collectStmts(body) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if callsClose(pass, s.X, v) {
				out[ast.Node(s)] = true
			}
		case *ast.AssignStmt:
			// err = v.Close() / err := v.Close()
			for _, r := range s.Rhs {
				if callsClose(pass, r, v) {
					out[ast.Node(s)] = true
				}
			}
		case *ast.ReturnStmt:
			// return v.Close()
			for _, r := range s.Results {
				if callsClose(pass, r, v) {
					out[ast.Node(s)] = true
				}
			}
		case *ast.DeferStmt:
			closed := false
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && callsClose(pass, e, v) {
					closed = true
				}
				return !closed
			})
			if closed {
				out[ast.Node(s)] = true
			}
		}
	}
	return out
}

// collectStmts flattens every statement in body, including nested blocks.
func collectStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

// callsClose reports whether e is exactly the call v.Close().
func callsClose(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}

// leakyPath walks the CFG from the opener assignment and returns the
// position of the first function exit reachable without passing a close
// node, or token.NoPos if every path closes v. Successors reached only
// through the opener's `err != nil` branch are exempt.
func leakyPath(pass *analysis.Pass, g *cfg.CFG, open *ast.AssignStmt, closes map[ast.Node]bool, errVar *types.Var) token.Pos {
	// Locate the block and node index of the open statement.
	var b0 *cfg.Block
	i0 := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(open) {
				b0, i0 = b, i
			}
		}
	}
	if b0 == nil {
		return token.NoPos
	}

	type state struct {
		b     *cfg.Block
		start int
		// errLive is true while errVar still holds the opener's error: only
		// then is an `err != nil` branch exempt. Any reassignment of errVar
		// (a later call reusing the variable) ends the exemption.
		errLive bool
	}
	type seenKey struct {
		b       *cfg.Block
		errLive bool
	}
	seen := make(map[seenKey]bool)
	stack := []state{{b0, i0 + 1, errVar != nil}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		closed := false
		errLive := st.errLive
		var errCond token.Token // EQL or NEQ when the block ends testing errVar against nil
		for i := st.start; i < len(st.b.Nodes); i++ {
			n := st.b.Nodes[i]
			if closes[n] {
				closed = true
				break
			}
			if errLive && n != ast.Node(open) && reassigns(pass, n, errVar) {
				errLive = false
			}
			if i == len(st.b.Nodes)-1 && errLive {
				if tok, ok := nilTest(pass, n, errVar); ok {
					errCond = tok
				}
			}
		}
		if closed {
			continue
		}
		if ret := st.b.Return(); ret != nil {
			return ret.Pos()
		}
		// A block with no successors and no return ends in panic (or is
		// unreachable); a leak on a panicking path is not this analyzer's
		// concern.
		for _, succ := range st.b.Succs {
			// Exempt the opener's error path: after `err != nil` the then
			// branch holds a failed open; after `err == nil` the else branch
			// does.
			if errCond == token.NEQ && succ.Kind == cfg.KindIfThen {
				continue
			}
			if errCond == token.EQL && succ.Kind == cfg.KindIfElse {
				continue
			}
			k := seenKey{succ, errLive}
			if seen[k] {
				continue
			}
			seen[k] = true
			stack = append(stack, state{succ, 0, errLive})
		}
	}
	return token.NoPos
}

// reassigns reports whether n assigns a new value to errVar.
func reassigns(pass *analysis.Pass, n ast.Node, errVar *types.Var) bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range assign.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == errVar || pass.TypesInfo.Defs[id] == errVar {
				return true
			}
		}
	}
	return false
}

// nilTest reports whether n is the expression `errVar == nil` or
// `errVar != nil`, returning the comparison operator.
func nilTest(pass *analysis.Pass, n ast.Node, errVar *types.Var) (token.Token, bool) {
	cmp, ok := n.(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return 0, false
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == errVar
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isErr(cmp.X) && isNil(cmp.Y) || isNil(cmp.X) && isErr(cmp.Y) {
		return cmp.Op, true
	}
	return 0, false
}
