// Trajlint is the repo's static-analysis suite: five go/analysis analyzers
// that enforce the reproduction's project-specific invariants — nil-safe
// instrumentation handles (nilguard), bit-deterministic work in the gated
// packages (determinism), tolerance-based float comparison in the numeric
// packages (floatcmp), leak-free file/cursor lifecycles (closepair), and
// first-parameter, never-stored context.Context plumbing in the
// cancellable packages (ctxfirst).
//
// It is a unitchecker binary, driven by the go command:
//
//	go build -o bin/trajlint ./tools/analyzers/cmd/trajlint
//	go vet -vettool=$(pwd)/bin/trajlint ./...
//
// Suppress an individual finding with a documented directive:
//
//	//trajlint:allow <analyzer> -- <reason>
//
// See README.md ("Static analysis") and each analyzer's package doc.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"trajpattern/tools/analyzers/closepair"
	"trajpattern/tools/analyzers/ctxfirst"
	"trajpattern/tools/analyzers/determinism"
	"trajpattern/tools/analyzers/floatcmp"
	"trajpattern/tools/analyzers/nilguard"
)

func main() {
	unitchecker.Main(
		nilguard.Analyzer,
		determinism.Analyzer,
		floatcmp.Analyzer,
		closepair.Analyzer,
		ctxfirst.Analyzer,
	)
}
