// Trajlint is the repo's static-analysis suite: nine go/analysis analyzers
// that enforce the reproduction's project-specific invariants — nil-safe
// instrumentation handles (nilguard), bit-deterministic work in the gated
// packages (determinism), tolerance-based float comparison in the numeric
// packages (floatcmp), leak-free file/cursor lifecycles (closepair),
// first-parameter, never-stored context.Context plumbing in the
// cancellable packages (ctxfirst), and the concurrency-safety suite over
// the sharded runtime: single-discipline atomics (atomicmix), lock
// release/self-deadlock/copy rules (lockdiscipline), joined goroutines
// (goleak) and bounded channel sends (sendbound).
//
// It is a unitchecker binary, driven by the go command:
//
//	go build -o bin/trajlint ./tools/analyzers/cmd/trajlint
//	go vet -vettool=$(pwd)/bin/trajlint ./...
//
// Suppress an individual finding with a documented directive:
//
//	//trajlint:allow <analyzer> -- <reason>
//
// See README.md ("Static analysis") and each analyzer's package doc.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"trajpattern/tools/analyzers/atomicmix"
	"trajpattern/tools/analyzers/closepair"
	"trajpattern/tools/analyzers/ctxfirst"
	"trajpattern/tools/analyzers/determinism"
	"trajpattern/tools/analyzers/floatcmp"
	"trajpattern/tools/analyzers/goleak"
	"trajpattern/tools/analyzers/lockdiscipline"
	"trajpattern/tools/analyzers/nilguard"
	"trajpattern/tools/analyzers/sendbound"
)

func main() {
	unitchecker.Main(
		nilguard.Analyzer,
		determinism.Analyzer,
		floatcmp.Analyzer,
		closepair.Analyzer,
		ctxfirst.Analyzer,
		atomicmix.Analyzer,
		lockdiscipline.Analyzer,
		goleak.Analyzer,
		sendbound.Analyzer,
	)
}
