// Package floatcmp forbids == and != on floating-point operands in the
// numeric packages (internal/core, internal/stat). NM scores are log-space
// float64s assembled from transcendental functions; exact equality on them
// is either vacuously false or an accident of one particular evaluation
// order, and silently breaks when an optimization reassociates the math.
//
// Allowed forms:
//   - both operands are compile-time constants;
//   - the NaN self-test x != x (and x == x);
//   - comparisons inside the approved epsilon/helper functions named by
//     -allowfuncs, where exact comparison is the point;
//   - sites annotated `//trajlint:allow floatcmp -- reason` (e.g. an exact
//     sentinel test against an untouched configuration zero value).
package floatcmp

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check for == and != on floats in the numeric packages

Log-space NM scores must be compared with an explicit tolerance (or not at
all); raw float equality is only permitted inside the approved helper
functions and at sites annotated //trajlint:allow floatcmp.`

const name = "floatcmp"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	pkgs       string
	allowFuncs string
)

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/core,trajpattern/internal/stat",
		"comma-separated package paths (or /-suffixes) held to the float-discipline contract")
	Analyzer.Flags.StringVar(&allowFuncs, "allowfuncs", "",
		"comma-separated function names in which raw float equality is approved")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	approved := make(map[string]bool)
	for _, f := range strings.Split(allowFuncs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			approved[f] = true
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		cmp := n.(*ast.BinaryExpr)
		if cmp.Op != token.EQL && cmp.Op != token.NEQ {
			return true
		}
		if directive.InTestFile(pass, cmp.Pos()) {
			return true
		}
		if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
			return true
		}
		if constExpr(pass, cmp.X) && constExpr(pass, cmp.Y) {
			return true
		}
		if isNaNSelfTest(cmp) {
			return true
		}
		if fn := enclosingFuncName(stack); approved[fn] {
			return true
		}
		ix.Report(pass, analysis.Diagnostic{
			Pos: cmp.Pos(),
			Message: fmt.Sprintf(
				"float %s comparison in %s: use an explicit tolerance (or an approved helper); exact equality on computed floats is evaluation-order-dependent",
				cmp.Op, pass.Pkg.Name()),
		})
		return true
	})
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func constExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isNaNSelfTest recognizes x != x / x == x for an identical simple operand.
func isNaNSelfTest(cmp *ast.BinaryExpr) bool {
	x, ok1 := ast.Unparen(cmp.X).(*ast.Ident)
	y, ok2 := ast.Unparen(cmp.Y).(*ast.Ident)
	return ok1 && ok2 && x.Name == y.Name
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration ("Recv.Method" for methods), or "" at package scope.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
			}
			return fd.Name.Name
		}
	}
	return ""
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
