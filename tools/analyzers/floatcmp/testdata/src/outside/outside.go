// Fixture proving floatcmp only applies in the numeric packages.
package outside

func eq(a, b float64) bool { return a == b }
