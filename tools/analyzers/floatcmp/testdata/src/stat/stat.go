// Fixture for the floatcmp analyzer.
package stat

type score float64

func scoreEq(a, b float64) bool {
	return a == b // want `float == comparison in stat`
}

func scoreNeq(a, b float64) bool {
	return a != b // want `float != comparison in stat`
}

// Named float types are still floats.
func namedEq(a, b score) bool {
	return a == b // want `float == comparison in stat`
}

// isNaN uses the self-test idiom: good.
func isNaN(x float64) bool {
	return x != x
}

// constCmp compares two compile-time constants: good.
func constCmp() bool {
	return 1.5 == 3.0/2.0
}

// intEq compares integers: not this analyzer's business.
func intEq(a, b int) bool { return a == b }

// approxEqual is the approved helper (see -allowfuncs in the test): exact
// comparison is the fast path of the tolerance check.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// sentinel documents an exact zero-value test.
func sentinel(x float64) bool {
	return x == 0 //trajlint:allow floatcmp -- fixture: untouched config zero value
}

func sentinelBad(x float64) bool {
	return x == 0 // want `float == comparison in stat`
}
