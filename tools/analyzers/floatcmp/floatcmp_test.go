package floatcmp_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/floatcmp"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestFloatcmp(t *testing.T) {
	if err := floatcmp.Analyzer.Flags.Set("allowfuncs", "approxEqual"); err != nil {
		t.Fatal(err)
	}
	defer floatcmp.Analyzer.Flags.Set("allowfuncs", "")
	checktest.Run(t, floatcmp.Analyzer,
		filepath.Join("testdata", "src", "stat"), "trajpattern/internal/stat")
}

func TestFloatcmpOutsideScope(t *testing.T) {
	checktest.Run(t, floatcmp.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/exp")
}
