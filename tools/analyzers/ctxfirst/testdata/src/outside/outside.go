// Fixture proving ctxfirst only applies inside the configured packages:
// code outside the cancellable layers may shape signatures freely.
package outside

import "context"

func free(n int, ctx context.Context) { _, _ = n, ctx }

type keeper struct{ ctx context.Context }

var _ = keeper{}
