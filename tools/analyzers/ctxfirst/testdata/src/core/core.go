// Fixture for the ctxfirst analyzer: Context placement in parameters,
// structs and interfaces.
package core

import "context"

// --- parameter position ---

func mineOK(ctx context.Context, k int) error { _ = ctx; _ = k; return nil }

func mineNoCtx(k int) int { return k }

func mineBad(k int, ctx context.Context) error { // want `context.Context is parameter 2 of mineBad`
	_ = ctx
	return nil
}

func mineTrailing(a, b int, ctx context.Context) { // want `context.Context is parameter 3 of mineTrailing`
	_, _, _ = a, b, ctx
}

type scorer struct{ n int }

func (s *scorer) scoreOK(ctx context.Context, xs []int) { _ = ctx; _ = xs }

func (s *scorer) scoreBad(xs []int, ctx context.Context) { // want `context.Context is parameter 2 of scoreBad`
	_ = ctx
	_ = xs
}

// --- struct fields ---

type runner struct {
	ctx context.Context // want `context.Context stored in a struct \(field ctx\)`
	n   int
}

type embedder struct {
	context.Context // want `context.Context stored in a struct \(embedded field\)`
}

type clean struct{ n int }

// --- interface methods ---

type cursorOK interface {
	Next(ctx context.Context) (int, error)
}

type cursorBad interface {
	Next(n int, ctx context.Context) error // want `context.Context is parameter 2 of Next`
}

// --- documented exemptions ---

//trajlint:allow ctxfirst -- fixture: legacy callback shape kept for compatibility
func legacy(n int, ctx context.Context) { _, _ = n, ctx }

type holder struct {
	ctx context.Context //trajlint:allow ctxfirst -- fixture: short-lived builder consumed on the same call stack
}

var _ = runner{}
var _ = embedder{}
var _ = clean{}
var _ = holder{}
var _ cursorOK
var _ cursorBad
