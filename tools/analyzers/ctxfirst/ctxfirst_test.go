package ctxfirst_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/ctxfirst"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestCtxFirst(t *testing.T) {
	checktest.Run(t, ctxfirst.Analyzer,
		filepath.Join("testdata", "src", "core"), "trajpattern/internal/core")
}

func TestCtxFirstOutsideScope(t *testing.T) {
	checktest.Run(t, ctxfirst.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/obs")
}
