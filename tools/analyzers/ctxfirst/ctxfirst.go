// Package ctxfirst enforces the repo's context-plumbing convention in the
// cancellable packages (internal/core and the layers above it): a
// context.Context is always the first parameter of the function that uses
// it, and is never stored in a struct.
//
// Both rules come from the cancellation design: Mine, ScoreAll, StreamNM
// and the cursors thread one request-scoped Context down the call tree, so
// every hop must accept it positionally (first, named ctx by Go
// convention) and none may squirrel it away in a field where its lifetime
// silently outlives the request — a stored Context is how a "cancelled"
// miner keeps running.
//
// It reports two classes of violation:
//
//  1. A function or method declaring a context.Context parameter anywhere
//     but first (methods count positions after the receiver).
//  2. A struct type with a field of type context.Context (embedded or
//     named).
//
// Suppress intentional uses with `//trajlint:allow ctxfirst -- reason`.
package ctxfirst

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that context.Context is the first parameter and never a struct field

The cancellable packages thread one request-scoped Context through the
call tree. A Context in any other parameter position breaks the
convention callers rely on; a Context stored in a struct outlives its
request and defeats cancellation.`

const name = "ctxfirst"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/core,trajpattern/internal/cli,trajpattern/internal/exp,trajpattern/internal/classify,trajpattern,trajpattern/internal/serve,trajpattern/internal/serve/guard,trajpattern/internal/serve/chaos,trajpattern/internal/ingest,trajpattern/internal/ingest/chaos",
		"comma-separated package paths (or /-suffixes) held to the context convention")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.StructType)(nil), (*ast.InterfaceType)(nil)}, func(n ast.Node) {
		switch d := n.(type) {
		case *ast.FuncDecl:
			checkParams(pass, ix, d.Type, d.Name.Name)
		case *ast.StructType:
			for _, f := range d.Fields.List {
				if !isContext(pass, f.Type) {
					continue
				}
				label := "embedded field"
				if len(f.Names) > 0 {
					label = fmt.Sprintf("field %s", f.Names[0].Name)
				}
				ix.Report(pass, analysis.Diagnostic{
					Pos: f.Pos(),
					Message: fmt.Sprintf(
						"context.Context stored in a struct (%s): a stored Context outlives its request and defeats cancellation; pass it as the first parameter instead",
						label),
				})
			}
		case *ast.InterfaceType:
			for _, m := range d.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok || len(m.Names) == 0 {
					continue
				}
				checkParams(pass, ix, ft, m.Names[0].Name)
			}
		}
	})
	return nil, nil
}

// checkParams reports any context.Context parameter of fn that is not in
// the first position.
func checkParams(pass *analysis.Pass, ix *directive.Index, ft *ast.FuncType, fname string) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting each name in a shared-type group
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContext(pass, field.Type) && pos != 0 {
			ix.Report(pass, analysis.Diagnostic{
				Pos: field.Pos(),
				Message: fmt.Sprintf(
					"context.Context is parameter %d of %s: the Context goes first so call sites read uniformly",
					pos+1, fname),
			})
		}
		pos += n
	}
}

// isContext reports whether the expression's type is context.Context.
func isContext(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
