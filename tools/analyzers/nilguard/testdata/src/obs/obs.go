// Fixture for the nilguard analyzer: a miniature of internal/obs.
package obs

import "sync/atomic"

// Counter is a handle type: exported pointer-receiver methods must be
// nil-safe.
type Counter struct{ v int64 }

// Add guards first: good.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc never dereferences the receiver (pure delegation): good.
func (c *Counter) Inc() { c.Add(1) }

// Bump dereferences before any guard: flagged.
func (c *Counter) Bump() {
	c.v++ // want `exported method Bump dereferences receiver c before a nil guard`
}

// Value guards after a receiver-free statement: good.
func (c *Counter) Value() int64 {
	var zero int64
	if c == nil {
		return zero
	}
	return c.v
}

// Late guards the receiver only after dereferencing it: flagged at the
// first deref.
func (c *Counter) Late() int64 {
	v := c.v // want `exported method Late dereferences receiver c before a nil guard`
	if c == nil {
		return 0
	}
	return v
}

// reset is unexported: not checked.
func (c *Counter) reset() { c.v = 0 }

// Zero is suppressed by a documented directive.
//
//trajlint:allow nilguard -- fixture: documented single-site exemption
func (c *Counter) Zero() {
	c.v = 0
}

// Stat is a value type; value receivers cannot be nil and are not checked.
type Stat struct{ n int64 }

// Total reads fields on a value receiver: good.
func (s Stat) Total() int64 { return s.n }

// Swapped accepts the reversed guard operand order: good.
func (c *Counter) Swapped() int64 {
	if nil == c {
		return 0
	}
	return c.v
}

// Histogram mirrors internal/obs.Histogram: a handle whose state is a
// slice of typed atomics; exported methods must guard before indexing it.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
}

// Observe guards first, then updates a bucket in place by index: good.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
}

// Counts dereferences the bucket slice before any guard: flagged.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.buckets)) // want `exported method Counts dereferences receiver h before a nil guard`
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Logger mirrors internal/obs/slogx.Logger: a handle wrapping an inner
// sink, where nil means "logging disabled".
type Logger struct{ sink *Counter }

// Log guards the handle, then delegates to the (itself nil-safe) sink:
// good.
func (l *Logger) Log(n int64) {
	if l == nil {
		return
	}
	l.sink.Add(n)
}

// Enabled reads the sink field before guarding: flagged.
func (l *Logger) Enabled() bool {
	return l.sink != nil // want `exported method Enabled dereferences receiver l before a nil guard`
}
