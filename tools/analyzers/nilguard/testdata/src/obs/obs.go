// Fixture for the nilguard analyzer: a miniature of internal/obs.
package obs

// Counter is a handle type: exported pointer-receiver methods must be
// nil-safe.
type Counter struct{ v int64 }

// Add guards first: good.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc never dereferences the receiver (pure delegation): good.
func (c *Counter) Inc() { c.Add(1) }

// Bump dereferences before any guard: flagged.
func (c *Counter) Bump() {
	c.v++ // want `exported method Bump dereferences receiver c before a nil guard`
}

// Value guards after a receiver-free statement: good.
func (c *Counter) Value() int64 {
	var zero int64
	if c == nil {
		return zero
	}
	return c.v
}

// Late guards the receiver only after dereferencing it: flagged at the
// first deref.
func (c *Counter) Late() int64 {
	v := c.v // want `exported method Late dereferences receiver c before a nil guard`
	if c == nil {
		return 0
	}
	return v
}

// reset is unexported: not checked.
func (c *Counter) reset() { c.v = 0 }

// Zero is suppressed by a documented directive.
//
//trajlint:allow nilguard -- fixture: documented single-site exemption
func (c *Counter) Zero() {
	c.v = 0
}

// Stat is a value type; value receivers cannot be nil and are not checked.
type Stat struct{ n int64 }

// Total reads fields on a value receiver: good.
func (s Stat) Total() int64 { return s.n }

// Swapped accepts the reversed guard operand order: good.
func (c *Counter) Swapped() int64 {
	if nil == c {
		return 0
	}
	return c.v
}
