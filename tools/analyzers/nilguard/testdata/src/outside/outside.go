// Fixture proving nilguard only applies inside the configured packages:
// the same unguarded method that is flagged in the obs fixture is allowed
// here.
package outside

type Counter struct{ v int64 }

func (c *Counter) Bump() { c.v++ }
