package nilguard_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/internal/checktest"
	"trajpattern/tools/analyzers/nilguard"
)

func TestNilguard(t *testing.T) {
	checktest.Run(t, nilguard.Analyzer,
		filepath.Join("testdata", "src", "obs"), "trajpattern/internal/obs")
}

func TestNilguardOutsideScope(t *testing.T) {
	checktest.Run(t, nilguard.Analyzer,
		filepath.Join("testdata", "src", "outside"), "example.com/outside")
}
