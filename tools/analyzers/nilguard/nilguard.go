// Package nilguard enforces the "unset = no-op" contract of the
// instrumentation handle types in internal/obs and internal/trace: every
// exported pointer-receiver method must tolerate a nil receiver, because
// disabled instrumentation hands out nil handles and hot paths call
// through them unconditionally.
//
// Concretely, in the configured packages, an exported method with a
// pointer receiver must nil-check its receiver
//
//	if c == nil {
//		return ...
//	}
//
// before the first expression that would dereference it (reading a field,
// or calling a value-receiver method, which dereferences implicitly).
// Methods that never dereference the receiver — pure delegations such as
// func (c *Counter) Inc() { c.Add(1) } — are fine as-is: calling a
// pointer-receiver method on a nil pointer is safe, and the callee is
// itself subject to this check. Suppress a finding with
// `//trajlint:allow nilguard -- reason`.
package nilguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that exported methods on instrumentation handle types begin with a nil-receiver guard

The obs/trace contract is that a nil handle is a valid "disabled"
instrument: every exported pointer-receiver method must nil-check the
receiver before dereferencing it, so instrumented hot paths pay only a
branch when no registry or tracer is attached.`

const name = "nilguard"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/obs,trajpattern/internal/obs/slogx,trajpattern/internal/trace,trajpattern/internal/serve,trajpattern/internal/serve/guard,trajpattern/internal/serve/chaos",
		"comma-separated package paths (or /-suffixes) whose handle types are checked")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
			return
		}
		if directive.InTestFile(pass, fn.Pos()) {
			return
		}
		recv := receiverVar(pass, fn)
		if recv == nil {
			return // value receiver, or receiver named _
		}
		if deref := firstUnguardedDeref(pass, fn.Body.List, recv); deref != nil {
			ix.Report(pass, analysis.Diagnostic{
				Pos: deref.Pos(),
				Message: fmt.Sprintf(
					"exported method %s dereferences receiver %s before a nil guard; handle methods must be no-ops on nil (start with `if %s == nil { return ... }`)",
					fn.Name.Name, recv.Name(), recv.Name()),
			})
		}
	})
	return nil, nil
}

// receiverVar returns the receiver variable if fn has a named pointer
// receiver, else nil.
func receiverVar(pass *analysis.Pass, fn *ast.FuncDecl) *types.Var {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	name := fn.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
	if !ok {
		return nil
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return nil
	}
	return obj
}

// firstUnguardedDeref scans the top-level statements in order and returns
// the first expression that dereferences recv before a `recv == nil`
// guard, or nil if the receiver is guarded first (or never dereferenced).
func firstUnguardedDeref(pass *analysis.Pass, stmts []ast.Stmt, recv *types.Var) ast.Node {
	for _, stmt := range stmts {
		if isNilGuard(pass, stmt, recv) {
			return nil
		}
		if n := derefIn(pass, stmt, recv); n != nil {
			return n
		}
	}
	return nil
}

// isNilGuard reports whether stmt is `if recv == nil { ... return ... }`
// (either operand order) whose body is terminated by a return.
func isNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv *types.Var) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(cmp.X) && isNil(cmp.Y) || isNil(cmp.X) && isRecv(cmp.Y)) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// derefIn returns the first node in stmt that dereferences recv: an
// explicit *recv, a field selection recv.f, or a call to a value-receiver
// method (implicit dereference). Calls to pointer-receiver methods do not
// dereference and are assumed nil-safe by the same contract.
func derefIn(pass *analysis.Pass, stmt ast.Stmt, recv *types.Var) ast.Node {
	var found ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch e := n.(type) {
		case *ast.StarExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				found = e
				return false
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(e.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				return true
			}
			sel := pass.TypesInfo.Selections[e]
			if sel == nil {
				return true
			}
			switch sel.Kind() {
			case types.FieldVal:
				found = e
				return false
			case types.MethodVal:
				if fn, ok := sel.Obj().(*types.Func); ok {
					sig := fn.Type().(*types.Signature)
					if r := sig.Recv(); r != nil {
						if _, ptr := r.Type().Underlying().(*types.Pointer); !ptr {
							found = e // value-receiver method: implicit deref
							return false
						}
					}
				}
			}
		}
		return true
	})
	return found
}
