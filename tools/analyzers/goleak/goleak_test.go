package goleak_test

import (
	"path/filepath"
	"testing"

	"trajpattern/tools/analyzers/goleak"
	"trajpattern/tools/analyzers/internal/checktest"
)

func TestGoleak(t *testing.T) {
	checktest.Run(t, goleak.Analyzer,
		filepath.Join("testdata", "src", "serve"), "trajpattern/internal/serve")
}

func TestGoleakOutsideScope(t *testing.T) {
	checktest.Run(t, goleak.Analyzer,
		filepath.Join("testdata", "src", "outside"), "trajpattern/internal/report")
}
