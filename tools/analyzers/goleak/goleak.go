// Package goleak proves, per `go func` literal in the configured
// concurrent packages, that the goroutine is joined — some party can
// observe its termination — so no fire-and-forget goroutine survives a
// drain. The serve soak and drain tests check the same property
// dynamically (internal/testutil/leakcheck); this pass checks it on every
// path, not just the schedules a test run happens to exercise.
//
// A `go func() {...}()` statement is accepted when the analysis finds any
// of the following join witnesses:
//
//   - WaitGroup join: the body calls Done (possibly deferred) on a
//     sync.WaitGroup. (The matching Wait is the waiter's side; a Done'd
//     goroutine is assumed awaited — Wait-less WaitGroups are their own
//     bug class and easy to spot in review.)
//
//   - Acknowledged send: the body sends on a channel that the function
//     launching the goroutine also receives from (directly, in a select
//     case, or by range). The receive is the join.
//
//   - Close handshake: the body closes a channel the launching function
//     receives from — or, symmetrically, the body receives/selects on a
//     channel the launching function closes (the close is a broadcast
//     that releases the goroutine).
//
//   - Context join: the body selects on (or receives from) a
//     context.Context's Done channel, so cancellation bounds its
//     lifetime.
//
// `go someFunc()` on a named function is not analyzed — the body is out of
// reach intraprocedurally; keep long-lived spawns as literals or waive the
// site. Suppress a true intentional daemon with
// `//trajlint:allow goleak -- reason`.
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"trajpattern/tools/analyzers/internal/directive"
)

const doc = `check that every go func literal is joined

A goroutine must be observable at termination: a WaitGroup.Done, a channel
send the launcher receives, a close handshake with the launcher, or a
select on a context's Done channel. Anything else is fire-and-forget and
survives a drain.`

const name = "goleak"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"trajpattern/internal/core/shard,trajpattern/internal/core/shard/supervisor,trajpattern/internal/core/shard/supervisor/chaos,trajpattern/internal/retry,"+
			"trajpattern/internal/serve,trajpattern/internal/serve/guard,"+
			"trajpattern/internal/serve/chaos,trajpattern/internal/cli,trajpattern/internal/trace,"+
			"trajpattern/internal/obs,trajpattern/internal/obs/slogx,trajpattern/internal/ingest,trajpattern/internal/ingest/chaos",
		"comma-separated package paths (or /-suffixes) whose goroutines must be joined")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass, name)
	defer ix.FlushBad(pass)
	if !directive.MatchPkg(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		gs := n.(*ast.GoStmt)
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // named function: body out of intraprocedural reach
		}
		encl := enclosingFunc(stack)
		if encl == nil {
			return true
		}
		if joined(pass, lit, encl, gs) {
			return true
		}
		ix.Report(pass, analysis.Diagnostic{
			Pos: gs.Pos(),
			Message: "goroutine is not joined: no WaitGroup.Done, no channel send or close the launcher " +
				"acknowledges, and no ctx.Done()/close-signalled exit; a fire-and-forget goroutine survives a drain " +
				"(join it, or waive with `//trajlint:allow goleak -- reason`)",
		})
		return true
	})
	return nil, nil
}

// enclosingFunc returns the body of the innermost function enclosing the
// go statement (a declaration or a literal).
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// joined reports whether the goroutine body presents a join witness.
func joined(pass *analysis.Pass, lit *ast.FuncLit, encl *ast.BlockStmt, gs *ast.GoStmt) bool {
	if callsWaitGroupDone(pass, lit.Body) {
		return true
	}
	if selectsOnContextDone(pass, lit.Body) {
		return true
	}
	// Channel handshakes between the body and the launching function.
	sent, closed, received := chanUses(pass, lit.Body)
	enclClosed, enclReceived := chanUsesOutsideGo(pass, encl, gs)
	for k := range sent {
		if enclReceived[k] {
			return true // acknowledged send
		}
	}
	for k := range closed {
		if enclReceived[k] {
			return true // close handshake, goroutine side closes
		}
	}
	for k := range received {
		if enclClosed[k] {
			return true // close handshake, launcher side closes
		}
	}
	return false
}

// callsWaitGroupDone reports whether body contains a Done() call on a
// sync.WaitGroup (deferred or not).
func callsWaitGroupDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return !found
		}
		if isSyncType(pass, sel.X, "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

// selectsOnContextDone reports whether body receives from a
// context.Context's Done channel (in a select case or a direct receive).
func selectsOnContextDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return !found
		}
		call, ok := ast.Unparen(un.X).(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return !found
		}
		if isContext(pass, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isSyncType reports whether e's type is sync.<name> or a pointer to it.
func isSyncType(pass *analysis.Pass, e ast.Expr, typeName string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == typeName
}

// isContext reports whether e's type is context.Context.
func isContext(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// chanKey canonicalizes a channel expression (identifier or field chain)
// into a stable key; ok is false for unresolvable expressions.
func chanKey(pass *analysis.Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		// Key on object identity: a captured local resolves to the same
		// object inside and outside the literal.
		return objKey(obj), true
	case *ast.SelectorExpr:
		base, ok := chanKey(pass, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// objKey keys a channel variable on its object identity, so a captured
// local resolves identically inside and outside the goroutine literal.
func objKey(obj types.Object) string {
	return fmt.Sprintf("%p/%s", obj, obj.Name())
}

// chanUses collects the channels a subtree sends on, closes, and receives
// from (direct receives, select cases, range statements).
func chanUses(pass *analysis.Pass, root ast.Node) (sent, closed, received map[string]bool) {
	sent, closed, received = map[string]bool{}, map[string]bool{}, map[string]bool{}
	collectChanUses(pass, root, nil, sent, closed, received)
	return
}

// chanUsesOutsideGo collects the closes and receives of the launching
// function's body with the go statement itself excluded (the goroutine's
// own uses are not the launcher's).
func chanUsesOutsideGo(pass *analysis.Pass, body *ast.BlockStmt, skip *ast.GoStmt) (closed, received map[string]bool) {
	sent := map[string]bool{}
	closed, received = map[string]bool{}, map[string]bool{}
	collectChanUses(pass, body, skip, sent, closed, received)
	return
}

func collectChanUses(pass *analysis.Pass, root ast.Node, skip ast.Node, sent, closedSet, received map[string]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if k, ok := chanKey(pass, x.Chan); ok {
				sent[k] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if k, ok := chanKey(pass, x.X); ok {
					received[k] = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if k, ok := chanKey(pass, x.X); ok {
						received[k] = true
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if len(x.Args) == 1 {
						if k, ok := chanKey(pass, x.Args[0]); ok {
							closedSet[k] = true
						}
					}
				}
			}
		}
		return true
	})
}
