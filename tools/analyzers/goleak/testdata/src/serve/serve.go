// Fixture for the goleak analyzer: goroutine-launch shapes from the
// serving and shard runtime.
package serve

import (
	"context"
	"sync"
)

// waitGroupJoin joins via a deferred Done: good.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// ackedSend sends its result on a channel the launcher receives: good
// (the app.Run listener shape).
func ackedSend(serve func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	return <-errc
}

// closeHandshakeBodyCloses closes a channel the launcher waits on: good
// (the soak test's collector shape).
func closeHandshakeBodyCloses(wg *sync.WaitGroup) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done
}

// closeHandshakeLauncherCloses launches a goroutine that blocks on a
// channel the launcher closes on exit: good (the SignalContext shape).
func closeHandshakeLauncherCloses() func() {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
			return
		}
	}()
	return func() { close(done) }
}

// ctxJoin bounds the goroutine's lifetime with the request context: good.
func ctxJoin(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case tick <- 1:
			}
		}
	}()
}

// fireAndForget has no join witness: flagged.
func fireAndForget() {
	go func() { // want `goroutine is not joined`
		work()
	}()
}

// daemon is an intentional process-lifetime goroutine: waived.
func daemon() {
	//trajlint:allow goleak -- fixture: process-lifetime janitor, reaped by exit
	go func() {
		for {
			work()
		}
	}()
}

// staleDaemon carries a reason-less waiver: the directive is flagged and
// the leak still reported.
func staleDaemon() {
	//trajlint:allow goleak // want `malformed trajlint directive`
	go func() { // want `goroutine is not joined`
		work()
	}()
}

// namedSpawn launches a named function: out of intraprocedural reach, not
// analyzed.
func namedSpawn() {
	go work()
}

func work() {}
