// Fixture: fire-and-forget outside goleak's scope produces no
// diagnostics.
package outside

func spawn() {
	go func() {}() // out of scope: not flagged
}
