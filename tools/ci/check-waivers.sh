#!/usr/bin/env bash
# check-waivers.sh — the repo's waiver-hygiene gate, consolidated from the
# inline shell that used to live in ci.yml. Run from the repository root.
#
# Enforced invariants:
#   1. The serving and ingest layers stay waiver-free: no
#      `trajlint:allow` anywhere under internal/serve, internal/ingest,
#      or cmd/trajserve. They were written to the analyzer contracts
#      from day one and must stay that way.
#   2. Every waiver in shipped code carries a reason (`-- why`). The
#      directive parser reports reason-less waivers inside analyzed
#      packages; this check extends that to every tracked .go file, so a
#      waiver can't hide in a package an analyzer doesn't cover yet.
#   3. Every waiver names a known analyzer. A typo'd name would silently
#      waive nothing while looking like it waived something.
#   4. The vendored x/tools revision is pinned in exactly one place:
#      tools/analyzers/go.mod. vendor/modules.txt must agree with it.
#
# Analyzer fixture trees (tools/analyzers/*/testdata) are exempt from 2
# and 3: they deliberately contain malformed and unknown-name directives
# to prove the analyzers reject them.

set -euo pipefail

# Keep in sync with cmd/trajlint/main.go and internal/directive.
KNOWN_ANALYZERS="nilguard|determinism|floatcmp|closepair|ctxfirst|atomicmix|lockdiscipline|goleak|sendbound"

fail=0

# 1. serve and ingest packages are waiver-free.
if grep -rn "trajlint:allow" internal/serve internal/ingest cmd/trajserve 2>/dev/null; then
  echo "ERROR: internal/serve, internal/ingest and cmd/trajserve must pass trajlint without waivers" >&2
  fail=1
fi

# Shipped .go files: everything tracked except the analyzer module, whose
# sources and fixtures talk *about* the directive syntax (the parser, its
# docs, and deliberately-malformed test inputs).
mapfile -t shipped < <(git ls-files '*.go' | grep -v '^tools/analyzers/')

# 2. every waiver carries a reason after ` -- `.
if grep -nH "trajlint:allow" "${shipped[@]}" | grep -v "trajlint:allow [a-z]* -- ."; then
  echo "ERROR: reason-less trajlint:allow directive (syntax: //trajlint:allow <name> -- <reason>)" >&2
  fail=1
fi

# 3. every waiver names a known analyzer.
if grep -nH "trajlint:allow" "${shipped[@]}" | grep -vE "trajlint:allow ($KNOWN_ANALYZERS) "; then
  echo "ERROR: trajlint:allow naming an unknown analyzer (known: ${KNOWN_ANALYZERS//|/, })" >&2
  fail=1
fi

# 4. x/tools is pinned in go.mod alone; vendor/modules.txt must match.
pin=$(sed -n 's/^require golang.org\/x\/tools \(.*\)$/\1/p' tools/analyzers/go.mod)
vendored=$(sed -n 's/^# golang.org\/x\/tools \(.*\)$/\1/p' tools/analyzers/vendor/modules.txt)
if [ -z "$pin" ]; then
  echo "ERROR: no golang.org/x/tools require line in tools/analyzers/go.mod" >&2
  fail=1
elif [ "$pin" != "$vendored" ]; then
  echo "ERROR: x/tools pin mismatch: go.mod has '$pin', vendor/modules.txt has '$vendored'" >&2
  echo "       re-vendor so both carry the same revision" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "waiver hygiene OK: serve+ingest waiver-free, all waivers reasoned and known, x/tools pin consistent"
