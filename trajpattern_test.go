package trajpattern_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"trajpattern"
)

// TestFacadeEndToEnd exercises the whole public API surface: generate a
// dataset, round-trip it through a file, mine patterns, group them, and
// run a pattern-enhanced prediction — the downstream-user journey.
func TestFacadeEndToEnd(t *testing.T) {
	ds, err := trajpattern.GenerateZebraDataset(trajpattern.ZebraConfig{
		NumZebras: 15, NumGroups: 3, AvgLen: 40, Seed: 9,
	}, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}

	// File round trip.
	path := filepath.Join(t.TempDir(), "zebra.jsonl")
	if err := trajpattern.WriteDatasetFile(path, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := trajpattern.ReadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrajectories() != ds.NumTrajectories() {
		t.Fatalf("round trip lost trajectories: %d vs %d",
			loaded.NumTrajectories(), ds.NumTrajectories())
	}

	// Mine.
	g := trajpattern.NewSquareGrid(10)
	scorer, err := trajpattern.NewScorer(loaded, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{K: 5, MaxLen: 4, MaxLowQ: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 5 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}

	// Group.
	patterns := make([]trajpattern.Pattern, len(res.Patterns))
	for i, sp := range res.Patterns {
		patterns[i] = sp.Pattern
	}
	groups, err := trajpattern.DiscoverGroups(patterns, g,
		trajpattern.DefaultGamma(loaded.MeanSigma()))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, grp := range groups {
		total += grp.Len()
	}
	if total != len(patterns) {
		t.Fatalf("groups cover %d of %d patterns", total, len(patterns))
	}
}

func TestFacadeBaselinesAgree(t *testing.T) {
	ds, err := trajpattern.GenerateTPRDataset(trajpattern.TPRConfig{
		NumObjects: 10, Length: 30, Seed: 5,
	}, 0.04, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := trajpattern.NewSquareGrid(5)
	mk := func() *trajpattern.Scorer {
		s, err := trajpattern.NewScorer(ds, trajpattern.ScorerConfig{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tp, err := trajpattern.Mine(context.Background(), mk(), trajpattern.MinerConfig{K: 5, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := trajpattern.MinePB(mk(), trajpattern.PBConfig{K: 5, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Patterns) != len(pb.Patterns) {
		t.Fatalf("result sizes differ: %d vs %d", len(tp.Patterns), len(pb.Patterns))
	}
	for i := range tp.Patterns {
		if math.Abs(tp.Patterns[i].NM-pb.Patterns[i].NM) > 1e-9 {
			t.Errorf("rank %d: TrajPattern NM %v vs PB NM %v",
				i, tp.Patterns[i].NM, pb.Patterns[i].NM)
		}
	}
}

func TestFacadeReportingPipeline(t *testing.T) {
	// Straight-line object: the reporting protocol should reconstruct it
	// with bounded error.
	n := 30
	path := make([]trajpattern.Point, n)
	times := make([]float64, n)
	for i := range path {
		path[i] = trajpattern.Pt(float64(i)*0.02, 0.5)
		times[i] = float64(i)
	}
	cfg := trajpattern.ReportConfig{U: 0.05, C: 2}
	ds, results, err := trajpattern.BuildReportedDataset(
		times, [][]trajpattern.Point{path}, cfg, 0, 1, n, trajpattern.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || len(results) != 1 {
		t.Fatalf("shape: %d/%d", len(ds), len(results))
	}
	for i, p := range ds[0] {
		if p.Mean.Dist(path[i]) > cfg.U+1e-9 {
			t.Errorf("snapshot %d error %v > U", i, p.Mean.Dist(path[i]))
		}
	}
}

func TestFacadePredictors(t *testing.T) {
	path := make([]trajpattern.Point, 20)
	for i := range path {
		path[i] = trajpattern.Pt(float64(i)*0.1, 0)
	}
	for _, p := range []trajpattern.Predictor{
		trajpattern.NewLinearPredictor(),
		trajpattern.NewKalmanPredictor(1e-4, 1e-4),
		trajpattern.NewRMFPredictor(0, 0),
	} {
		ev, err := trajpattern.EvaluatePredictor(p, [][]trajpattern.Point{path}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Rate > 0.5 {
			t.Errorf("%s mis-predicts linear motion at rate %v", p.Name(), ev.Rate)
		}
	}
}
