package trajpattern_test

import (
	"context"
	"fmt"

	"trajpattern"
)

// ExampleMine mines the dominant movement pattern from three trajectories
// that repeat the same two-cell hop.
func ExampleMine() {
	g := trajpattern.NewSquareGrid(4)
	a, b := g.CenterAt(5), g.CenterAt(6) // two adjacent cells

	var ds trajpattern.Dataset
	for i := 0; i < 3; i++ {
		var tr trajpattern.Trajectory
		for rep := 0; rep < 4; rep++ {
			tr = append(tr,
				trajpattern.TrajPoint{Mean: a, Sigma: 0.03},
				trajpattern.TrajPoint{Mean: b, Sigma: 0.03},
			)
		}
		ds = append(ds, tr)
	}

	scorer, err := trajpattern.NewScorer(ds, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth(),
	})
	if err != nil {
		panic(err)
	}
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{
		K: 1, MinLen: 2, MaxLen: 4, MaxLowQ: 8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Patterns[0].Pattern.Key())
	// Output: 5,6
}

// ExampleSynchronize shows the §3.2 snapshot synchronization: two
// asynchronous reports dead-reckoned onto a regular schedule.
func ExampleSynchronize() {
	reports := []trajpattern.Report{
		{Time: 0, Loc: trajpattern.Pt(0, 0)},
		{Time: 2, Loc: trajpattern.Pt(2, 0)}, // velocity (1, 0)
	}
	tr, err := trajpattern.Synchronize(reports, trajpattern.SyncConfig{
		Start: 0, Interval: 1, Count: 4, U: 0.2, C: 2,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range tr {
		fmt.Printf("%.0f,%.0f σ=%.1f\n", p.Mean.X, p.Mean.Y, p.Sigma)
	}
	// Output:
	// 0,0 σ=0.1
	// 0,0 σ=0.1
	// 2,0 σ=0.1
	// 3,0 σ=0.1
}

// ExampleDiscoverGroups compresses three nearly identical patterns into
// one pattern group (Definition 2).
func ExampleDiscoverGroups() {
	g := trajpattern.NewSquareGrid(10)
	patterns := []trajpattern.Pattern{
		{g.IndexOf(trajpattern.Pt(0.15, 0.15)), g.IndexOf(trajpattern.Pt(0.25, 0.15))},
		{g.IndexOf(trajpattern.Pt(0.15, 0.25)), g.IndexOf(trajpattern.Pt(0.25, 0.25))},
		{g.IndexOf(trajpattern.Pt(0.85, 0.85)), g.IndexOf(trajpattern.Pt(0.85, 0.75))},
	}
	groups, err := trajpattern.DiscoverGroups(patterns, g, 0.15)
	if err != nil {
		panic(err)
	}
	for _, grp := range groups {
		fmt.Printf("group of %d (length %d)\n", grp.Len(), grp.PatternLen())
	}
	// Output:
	// group of 2 (length 2)
	// group of 1 (length 2)
}

// ExampleTrainClassifier builds the introduction's pattern-based
// classifier: two movement styles are told apart by which mined pattern
// set supports a new trajectory better.
func ExampleTrainClassifier() {
	g := trajpattern.NewSquareGrid(5)
	mk := func(cells []int) trajpattern.Dataset {
		var ds trajpattern.Dataset
		for i := 0; i < 4; i++ {
			var tr trajpattern.Trajectory
			for rep := 0; rep < 3; rep++ {
				for _, c := range cells {
					tr = append(tr, trajpattern.TrajPoint{Mean: g.CenterAt(c), Sigma: 0.04})
				}
			}
			ds = append(ds, tr)
		}
		return ds
	}
	classes := map[string]trajpattern.Dataset{
		"east":  mk([]int{0, 1, 2, 3}),
		"north": mk([]int{0, 5, 10, 15}),
	}
	c, err := trajpattern.TrainClassifier(context.Background(), classes, trajpattern.ClassifierConfig{
		Scorer: trajpattern.ScorerConfig{Grid: g, Delta: g.CellWidth()},
		K:      4, MinLen: 2, MaxLen: 4,
	})
	if err != nil {
		panic(err)
	}
	probe := mk([]int{0, 1, 2, 3})[0] // an eastbound trajectory
	pred, _, err := c.Classify(probe)
	if err != nil {
		panic(err)
	}
	fmt.Println(pred)
	// Output: east
}

// ExampleBoxProb evaluates the paper's Prob(l, σ, p, δ) for a location
// distribution centered on the queried position.
func ExampleBoxProb() {
	p := trajpattern.BoxProb(trajpattern.Pt(0.5, 0.5), 0.1, trajpattern.Pt(0.5, 0.5), 0.1)
	fmt.Printf("%.3f\n", p)
	// Output: 0.466
}
