// Benchmark harness: one testing.B per table/figure of the paper's
// evaluation plus the ablations (see DESIGN.md §3 for the index). Each
// benchmark executes the corresponding experiment at a reduced scale so
// `go test -bench=.` completes in minutes, and reports the experiment's
// headline numbers as custom metrics. cmd/trajbench runs the same
// experiments at full scale and prints the complete tables.
package trajpattern_test

import (
	"context"
	"testing"

	"trajpattern/internal/exp"
)

const benchSeed = 1

func benchBus() exp.BusOptions {
	return exp.BusOptions{Scale: 0.25, Seed: benchSeed}
}

func benchSweep() exp.SweepOptions {
	return exp.SweepOptions{Scale: 1, Seed: benchSeed, K: 8, S: 40, L: 40, GridN: 10, MaxLen: 5}
}

// BenchmarkE1AvgPatternLength regenerates the §6.1 statistic: average
// length of the top-k NM patterns vs top-k match patterns (length >= 3).
// Paper: 4.2 vs 3.18.
func BenchmarkE1AvgPatternLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE1(context.Background(), exp.E1Options{Bus: benchBus(), K: 60, MinLen: 3, MaxLen: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgLenNM, "avgLenNM")
		b.ReportMetric(res.AvgLenMatch, "avgLenMatch")
	}
}

// BenchmarkE2Fig3Prediction regenerates Figure 3: mis-prediction reduction
// of LM/LKF/RMF with NM patterns vs match patterns. Paper: 20–40% (NM) and
// 10–20% (match).
func BenchmarkE2Fig3Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE2(context.Background(), exp.E2Options{Bus: benchBus(), K: 30, MinLen: 4, MaxLen: 8})
		if err != nil {
			b.Fatal(err)
		}
		var nm, match float64
		for _, m := range res.Models {
			nm += m.NMReduction
			match += m.MatchReduction
		}
		n := float64(len(res.Models))
		b.ReportMetric(nm/n*100, "%redNM")
		b.ReportMetric(match/n*100, "%redMatch")
	}
}

// seriesMetric reports the first and last y value of a sweep line, which
// captures the growth the corresponding figure plots.
func seriesMetric(b *testing.B, s *exp.Series) {
	b.Helper()
	for _, l := range s.Lines {
		if len(l.YS) == 0 {
			continue
		}
		name := "TP"
		if l.Name == "PB (s)" {
			name = "PB"
		}
		b.ReportMetric(l.YS[0]*1000, name+"-first-ms")
		b.ReportMetric(l.YS[len(l.YS)-1]*1000, name+"-last-ms")
	}
}

// BenchmarkE3Fig4aVaryK regenerates Figure 4(a): runtime vs k for
// TrajPattern and PB.
func BenchmarkE3Fig4aVaryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.RunE3(context.Background(), benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		seriesMetric(b, s)
	}
}

// BenchmarkE4Fig4bVaryS regenerates Figure 4(b): runtime vs the number of
// trajectories S.
func BenchmarkE4Fig4bVaryS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Scale = 0.5
		s, err := exp.RunE4(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		seriesMetric(b, s)
	}
}

// BenchmarkE5Fig4cVaryL regenerates Figure 4(c): runtime vs the average
// trajectory length L.
func BenchmarkE5Fig4cVaryL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Scale = 0.5
		s, err := exp.RunE5(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		seriesMetric(b, s)
	}
}

// BenchmarkE6Fig4dVaryG regenerates Figure 4(d): runtime vs the number of
// grid cells G.
func BenchmarkE6Fig4dVaryG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.RunE6(context.Background(), benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		seriesMetric(b, s)
	}
}

// BenchmarkE7Fig4eVaryDelta regenerates Figure 4(e): number of pattern
// groups vs the indifferent threshold δ (decreasing in δ).
func BenchmarkE7Fig4eVaryDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// E7 calibrates its own grid/uncertainty (γ = 3σ̄ must span at
		// least one cell); only the seed is passed through.
		s, err := exp.RunE7(context.Background(), exp.E7Options{Sweep: exp.SweepOptions{Seed: benchSeed, K: 20}})
		if err != nil {
			b.Fatal(err)
		}
		ys := s.Lines[0].YS
		b.ReportMetric(ys[0], "groups-smallδ")
		b.ReportMetric(ys[len(ys)-1], "groups-largeδ")
	}
}

// BenchmarkA1PruningAblation measures the 1-extension pruning effect.
func BenchmarkA1PruningAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunA1(context.Background(), benchSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2ProbModes measures box vs disk probability computation.
func BenchmarkA2ProbModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunA2(context.Background(), benchSweep()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3CacheAblation measures the per-cell log-prob cache effect.
func BenchmarkA3CacheAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunA3(context.Background(), benchSweep()); err != nil {
			b.Fatal(err)
		}
	}
}
