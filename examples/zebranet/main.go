// ZebraNet: mine migration patterns from a ZebraNet-style herd simulation
// (§6.2) and contrast the normalized-match measure with the unnormalized
// match measure of [14] — the paper's core motivation: match favors the
// shortest patterns, NM surfaces longer, more informative ones.
//
// Run with: go run ./examples/zebranet
package main

import (
	"context"
	"fmt"
	"log"

	"trajpattern"
)

func main() {
	// Herds of zebras wander the reserve; devices report with tolerable
	// uncertainty U = 0.02 and confidence c = 2 (σ = 0.01).
	ds, err := trajpattern.GenerateZebraDataset(trajpattern.ZebraConfig{
		NumZebras: 60,
		NumGroups: 5,
		AvgLen:    80,
		Seed:      42,
	}, 0.02, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d zebras, avg trajectory length %.1f, σ = %.3f\n",
		ds.NumTrajectories(), ds.AvgLength(), ds.MeanSigma())

	g := trajpattern.NewSquareGrid(14)
	mkScorer := func() *trajpattern.Scorer {
		s, err := trajpattern.NewScorer(ds, trajpattern.ScorerConfig{
			Grid:  g,
			Delta: g.CellWidth(),
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	const k, minLen, maxLen = 10, 2, 6

	// Top-k by normalized match (the paper's TrajPattern algorithm).
	nmRes, err := trajpattern.Mine(context.Background(), mkScorer(), trajpattern.MinerConfig{
		K: k, MinLen: minLen, MaxLen: maxLen, MaxLowQ: 4 * k,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Top-k by match (the Apriori-friendly measure of [14]).
	mRes, err := trajpattern.MineMatch(mkScorer(), trajpattern.MatchConfig{
		K: k, MinLen: minLen, MaxLen: maxLen,
	})
	if err != nil {
		log.Fatal(err)
	}

	avgLen := func(n int, total int) float64 { return float64(total) / float64(n) }
	var nmTotal, mTotal int
	fmt.Println("\ntop patterns by normalized match:")
	for i, sp := range nmRes.Patterns {
		fmt.Printf("  %2d. NM=%9.2f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
		nmTotal += len(sp.Pattern)
	}
	fmt.Println("\ntop patterns by match ([14]):")
	for i, sm := range mRes.Patterns {
		fmt.Printf("  %2d. match=%8.4f len=%d  %s\n", i+1, sm.Match, len(sm.Pattern), sm.Pattern.Format(g))
		mTotal += len(sm.Pattern)
	}
	fmt.Printf("\naverage pattern length: NM %.2f vs match %.2f (the paper reports 4.2 vs 3.18)\n",
		avgLen(len(nmRes.Patterns), nmTotal), avgLen(len(mRes.Patterns), mTotal))

	// §5 extension: try inserting wild cards into the best NM pattern.
	scorer := mkScorer()
	best := nmRes.Patterns[0].Pattern
	wild, wildNM, err := scorer.ExpandWithWildcards(best, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwildcard refinement of the best pattern: %s (NM %.2f)\n", wild.String(), wildNM)
}
