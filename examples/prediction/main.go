// Prediction: improve a location predictor with mined trajectory patterns
// (the Figure 3 use case). Objects repeatedly drive a turn sequence; the
// linear model mis-predicts every turn, while the pattern-enhanced
// predictor anticipates turns it has seen as mined velocity patterns.
//
// Run with: go run ./examples/prediction
package main

import (
	"context"
	"fmt"
	"log"

	"trajpattern"
	"trajpattern/internal/predict"
)

func main() {
	rng := trajpattern.NewRNG(3)

	// Velocity vocabulary of the moving objects: east, east, north, ...
	vocab := []trajpattern.Point{
		trajpattern.Pt(0.03, 0),
		trajpattern.Pt(0.03, 0),
		trajpattern.Pt(0, 0.03),
		trajpattern.Pt(0.03, 0),
		trajpattern.Pt(0, -0.03),
	}

	// Build training trajectories (imprecise velocities) and test paths
	// (true locations).
	const sigma = 0.004
	var trainVel trajpattern.Dataset
	var testPaths [][]trajpattern.Point
	for obj := 0; obj < 12; obj++ {
		pos := trajpattern.Pt(0.1, rng.Uniform(0.2, 0.8))
		var path []trajpattern.Point
		var vel trajpattern.Trajectory
		for rep := 0; rep < 5; rep++ {
			for _, v := range vocab {
				noisy := trajpattern.Pt(v.X+rng.Normal(0, sigma), v.Y+rng.Normal(0, sigma))
				pos = pos.Add(noisy)
				path = append(path, pos)
				vel = append(vel, trajpattern.TrajPoint{Mean: noisy, Sigma: sigma})
			}
		}
		if obj < 9 {
			trainVel = append(trainVel, vel)
		} else {
			testPaths = append(testPaths, path)
		}
	}

	// Mine velocity patterns of length >= 3 on the training set.
	b := trainVel.Bounds().Expand(0.01)
	g := trajpattern.NewGrid(trajpattern.NewRect(b.Min, b.Max), 12, 12)
	scorer, err := trajpattern.NewScorer(trainVel, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{
		K: 8, MinLen: 3, MaxLen: 6, MaxLowQ: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	patterns := make([]trajpattern.Pattern, len(res.Patterns))
	for i, sp := range res.Patterns {
		patterns[i] = sp.Pattern
		fmt.Printf("mined pattern %d: NM=%7.2f  %s\n", i+1, sp.NM, sp.Pattern.Format(g))
	}

	// Compare each base model against its pattern-enhanced version.
	const u = 0.02 // mis-prediction tolerance
	models := []func() trajpattern.Predictor{
		func() trajpattern.Predictor { return trajpattern.NewLinearPredictor() },
		func() trajpattern.Predictor { return trajpattern.NewKalmanPredictor(1e-5, sigma*sigma) },
		func() trajpattern.Predictor { return trajpattern.NewRMFPredictor(0, 0) },
	}
	fmt.Printf("\n%-4s  %-14s  %-14s  %s\n", "model", "base mis-pred", "with patterns", "reduction")
	for _, mk := range models {
		base := mk()
		baseEv, err := trajpattern.EvaluatePredictor(base, testPaths, u)
		if err != nil {
			log.Fatal(err)
		}
		// The confirmation probability (Equation 2) must reach 0.9
		// jointly, so the indifference radius δ is set to 3σ — a position
		// within one noise standard deviation of the pattern then
		// confirms with high per-position probability.
		enhanced := &predict.PatternPredictor{
			Base:     mk(),
			Patterns: patterns,
			Grid:     g,
			Delta:    3 * sigma,
			Sigma:    sigma,
		}
		enhEv, err := trajpattern.EvaluatePredictor(enhanced, testPaths, u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %-14d  %-14d  %.0f%%\n",
			base.Name(), baseEv.MisPredictions, enhEv.MisPredictions,
			trajpattern.Reduction(baseEv, enhEv)*100)
	}
}
