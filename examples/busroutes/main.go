// Bus routes: the full §6.1 pipeline end to end — simulate a bus fleet,
// run the §3.1 location-reporting protocol (dead reckoning, tolerable
// uncertainty U, lossy channel), synchronize the received reports onto
// snapshots, transform to velocity trajectories, and mine the common
// velocity patterns of the fleet.
//
// Run with: go run ./examples/busroutes
package main

import (
	"context"
	"fmt"
	"log"

	"trajpattern"
)

func main() {
	const (
		u        = 0.01 // tolerable uncertainty distance
		c        = 2    // confidence constant: σ = U/c, tolerates 5% loss
		lossProb = 0.05
		minutes  = 101
	)

	// 1. Simulate the fleet: 5 routes × 4 buses × 3 days of per-minute
	// GPS readings (a scaled-down version of the paper's 500 traces).
	traces, err := trajpattern.GenerateBuses(trajpattern.BusConfig{
		Routes: 5, BusesPerRoute: 4, Days: 3, Minutes: minutes, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	paths := make([][]trajpattern.Point, len(traces))
	for i, tr := range traces {
		paths[i] = tr.Path
	}
	times := make([]float64, minutes)
	for i := range times {
		times[i] = float64(i)
	}

	// 2. Reporting protocol: each bus transmits only when its true
	// position strays more than U from the server's dead-reckoned
	// prediction; 5% of reports are lost. The server synchronizes what it
	// received onto per-minute snapshots.
	locations, results, err := trajpattern.BuildReportedDataset(
		times, paths,
		trajpattern.ReportConfig{U: u, C: c, LossProb: lossProb},
		0, 1, minutes, trajpattern.NewRNG(23))
	if err != nil {
		log.Fatal(err)
	}
	var sent, lost int
	for _, r := range results {
		sent += r.Sent
		lost += r.Lost
	}
	fmt.Printf("reporting: %d traces, %d reports sent (%.1f%% of readings), %d lost\n",
		len(results), sent, 100*float64(sent)/float64(len(results)*minutes), lost)

	// 3. Velocity transform: buses on different routes travel in
	// different regions, so mining happens in velocity space (§3.2).
	velocities := locations.ToVelocity()

	// 4. Fit a grid to velocity space and mine.
	b := velocities.Bounds().Expand(3 * velocities.MeanSigma())
	g := trajpattern.NewGrid(trajpattern.NewRect(b.Min, b.Max), 20, 20)
	scorer, err := trajpattern.NewScorer(velocities, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{
		K: 12, MinLen: 3, MaxLen: 8, MaxLowQ: 48,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop velocity patterns (length ≥ 3) across the fleet:\n")
	patterns := make([]trajpattern.Pattern, 0, len(res.Patterns))
	for i, sp := range res.Patterns {
		fmt.Printf("  %2d. NM=%8.2f len=%d  %s\n", i+1, sp.NM, len(sp.Pattern), sp.Pattern.Format(g))
		patterns = append(patterns, sp.Pattern)
	}

	groups, err := trajpattern.DiscoverGroups(patterns, g,
		trajpattern.DefaultGamma(velocities.MeanSigma()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompact presentation: %d pattern groups for %d patterns\n",
		len(groups), len(patterns))
	for i, grp := range groups {
		fmt.Printf("  group %d: %d member(s), length %d, representative %s\n",
			i+1, grp.Len(), grp.PatternLen(), grp.Members[0].Format(g))
	}
}
