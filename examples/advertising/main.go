// Advertising: the paper's location-based commerce use case — "retail
// stores will distribute e-Flyers to potential customers' mobile devices
// based on their locations ... finding common moving patterns of mobile
// devices is valuable for inferring potential movement of mobile device
// users, and thus helps to efficiently distribute the advertisement."
//
// Shoppers move through a mall grid along a few common corridors. A store
// wants to send flyers only to devices likely to pass it within the next
// few snapshots. We mine location patterns of the crowd, then target a
// device when its recent (imprecise) locations confirm the prefix of a
// pattern whose continuation reaches the store cell — and compare against
// untargeted broadcasting.
//
// Run with: go run ./examples/advertising
package main

import (
	"context"
	"fmt"
	"log"

	"trajpattern"
)

func main() {
	rng := trajpattern.NewRNG(17)

	// Corridor paths through the mall (unit square). Every shopper walks
	// one of these with noise, at cell-per-snapshot speed.
	// Waypoints sit on cell centers of the 10×10 grid below, so shopper
	// noise never straddles a cell boundary.
	corridors := [][]trajpattern.Point{
		{trajpattern.Pt(0.15, 0.45), trajpattern.Pt(0.35, 0.45), trajpattern.Pt(0.55, 0.45), trajpattern.Pt(0.75, 0.45), trajpattern.Pt(0.95, 0.45)},
		{trajpattern.Pt(0.55, 0.05), trajpattern.Pt(0.55, 0.25), trajpattern.Pt(0.55, 0.45), trajpattern.Pt(0.75, 0.45), trajpattern.Pt(0.95, 0.45)},
		{trajpattern.Pt(0.15, 0.85), trajpattern.Pt(0.35, 0.65), trajpattern.Pt(0.55, 0.45), trajpattern.Pt(0.55, 0.25), trajpattern.Pt(0.55, 0.05)},
	}
	const sigma = 0.02
	makeShopper := func() trajpattern.Trajectory {
		c := corridors[rng.Intn(len(corridors))]
		var tr trajpattern.Trajectory
		for _, w := range c {
			tr = append(tr, trajpattern.TrajP(
				w.X+rng.Normal(0, 0.01), w.Y+rng.Normal(0, 0.01), sigma))
		}
		return tr
	}
	var train trajpattern.Dataset
	for i := 0; i < 60; i++ {
		train = append(train, makeShopper())
	}
	var test trajpattern.Dataset
	for i := 0; i < 40; i++ {
		test = append(test, makeShopper())
	}

	// The store sits at the east end of the main corridor.
	g := trajpattern.NewSquareGrid(10)
	store := g.IndexOf(trajpattern.Pt(0.95, 0.45))

	// δ = half a cell: a shopper "is at" a waypoint only when inside its
	// cell, which keeps neighbouring-cell pattern variants from crowding
	// the top-k.
	scorer, err := trajpattern.NewScorer(train, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth() / 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{
		K: 40, MinLen: 3, MaxLen: 5, MaxLowQ: 160,
	})
	if err != nil {
		log.Fatal(err)
	}
	// NM sums over every shopper, so patterns containing the terminal
	// store cell itself rank poorly (they match a single window and score
	// the floor on the non-store corridor). The useful targeting signal
	// is a pattern whose TAIL heads down the store corridor: its prefix
	// confirms early, its continuation implies passing the store.
	storeCenter := g.CenterAt(store)
	heading := func(p trajpattern.Pattern) bool {
		last := g.CenterAt(p[len(p)-1])
		return last.X >= 0.65 && last.Y > 0.4 && last.Y < 0.5 // east on the store row
	}
	var toStore []trajpattern.Pattern
	for _, sp := range res.Patterns {
		if heading(sp.Pattern) {
			toStore = append(toStore, sp.Pattern)
		}
	}
	fmt.Printf("mined %d patterns, %d head down the store corridor (store cell %v), e.g.:\n",
		len(res.Patterns), len(toStore), storeCenter)
	for i, p := range toStore {
		if i == 3 {
			break
		}
		fmt.Printf("  %s\n", p.Format(g))
	}
	if len(toStore) == 0 {
		log.Fatal("no mined pattern heads to the store; tune K")
	}

	// Targeting rule: slide the shopper's first three snapshots over the
	// pattern's two-position prefix; send a flyer when some window
	// confirms it. Mined cells are compromises across corridors (they can
	// sit a cell off any single corridor), so the confirmation box is a
	// full cell wide and the threshold correspondingly loose.
	confirm := func(tr trajpattern.Trajectory, p trajpattern.Pattern) bool {
		if len(p) < 3 || len(tr) < 3 {
			return false
		}
		for w := 0; w+2 <= 3; w++ {
			prob := 1.0
			for i := 0; i < 2; i++ {
				c := g.CenterAt(p[i])
				prob *= boxProb(tr[w+i].Mean, sigma, c, g.CellWidth())
			}
			if prob >= 0.25 {
				return true
			}
		}
		return false
	}
	willVisit := func(tr trajpattern.Trajectory) bool {
		for _, p := range tr[2:] {
			if g.IndexOf(p.Mean) == store {
				return true
			}
		}
		return false
	}

	var sent, hits, visits int
	for _, tr := range test {
		visit := willVisit(tr)
		if visit {
			visits++
		}
		targeted := false
		for _, p := range toStore {
			if confirm(tr, p) {
				targeted = true
				break
			}
		}
		if targeted {
			sent++
			if visit {
				hits++
			}
		}
	}
	fmt.Printf("\nshoppers: %d, of which %d eventually pass the store (%.0f%% broadcast precision)\n",
		len(test), visits, 100*float64(visits)/float64(len(test)))
	fmt.Printf("targeted flyers sent: %d, correct: %d (%.0f%% targeted precision, %.0f%% of visitors reached)\n",
		sent, hits, 100*float64(hits)/float64(max(sent, 1)),
		100*float64(hits)/float64(max(visits, 1)))
}

func boxProb(mean trajpattern.Point, sigma float64, center trajpattern.Point, delta float64) float64 {
	return trajpattern.BoxProb(mean, sigma, center, delta)
}
