// Quickstart: mine trajectory patterns from a handful of imprecise
// trajectories with the trajpattern public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"trajpattern"
)

func main() {
	// Three mobile objects repeatedly walk the same L-shaped path through
	// the unit square; a fourth wanders elsewhere. Each snapshot is an
	// imprecise location: the true position is normal around Mean with
	// standard deviation Sigma.
	rng := trajpattern.NewRNG(7)
	waypoints := []trajpattern.Point{
		trajpattern.Pt(0.15, 0.15),
		trajpattern.Pt(0.45, 0.15),
		trajpattern.Pt(0.75, 0.15),
		trajpattern.Pt(0.75, 0.45),
		trajpattern.Pt(0.75, 0.75),
	}
	var ds trajpattern.Dataset
	for obj := 0; obj < 3; obj++ {
		var tr trajpattern.Trajectory
		for rep := 0; rep < 4; rep++ {
			for _, w := range waypoints {
				tr = append(tr, trajpattern.TrajP(
					w.X+rng.Normal(0, 0.01),
					w.Y+rng.Normal(0, 0.01),
					0.03, // σ of the location distribution
				))
			}
		}
		ds = append(ds, tr)
	}
	var stray trajpattern.Trajectory
	for i := 0; i < 20; i++ {
		stray = append(stray, trajpattern.TrajP(rng.Float64(), rng.Float64(), 0.03))
	}
	ds = append(ds, stray)

	// Discretize the space and build a scorer; δ defaults to the cell
	// size as in the paper.
	g := trajpattern.NewSquareGrid(10)
	scorer, err := trajpattern.NewScorer(ds, trajpattern.ScorerConfig{
		Grid:  g,
		Delta: g.CellWidth(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mine the top-5 patterns of length at least 2 by normalized match
	// (without a length floor the best patterns are single strong
	// positions — the §5 min-length variant asks for sequences).
	res, err := trajpattern.Mine(context.Background(), scorer, trajpattern.MinerConfig{K: 5, MinLen: 2, MaxLen: 6, MaxLowQ: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top patterns by normalized match:")
	patterns := make([]trajpattern.Pattern, 0, len(res.Patterns))
	for i, sp := range res.Patterns {
		fmt.Printf("  %d. NM=%.3f  %s\n", i+1, sp.NM, sp.Pattern.Format(g))
		patterns = append(patterns, sp.Pattern)
	}

	// Present them as pattern groups (γ = 3σ̄).
	groups, err := trajpattern.DiscoverGroups(patterns, g, trajpattern.DefaultGamma(ds.MeanSigma()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d pattern groups:\n", len(groups))
	for i, grp := range groups {
		fmt.Printf("  group %d: %d pattern(s) of length %d\n", i+1, grp.Len(), grp.PatternLen())
	}
}
