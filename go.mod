module trajpattern

go 1.22
